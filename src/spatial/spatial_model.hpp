/// \file spatial_model.hpp
/// \brief Grid-based spatially correlated intra-die variation.
///
/// Within-die variation is not fully independent gate to gate: neighbouring
/// gates see correlated channel-length and Vth excursions (lens aberration,
/// etch loading). Following the grid models of the spatial-SSTA literature,
/// the die is divided into grid x grid regions, and each intra-die
/// parameter splits into a region-shared and a gate-local component:
///
///   dL_i = dL_glob + dL_region(r_i) + dL_local,i
///
/// with the intra-die variance budget preserved:
///
///   sigma_l_intra^2 = sigma_l_region^2 + sigma_l_local^2,
///   sigma_l_region = sqrt(region_fraction_l) * sigma_l_intra.
///
/// Gates in the same region are correlated (on top of the inter-die
/// component); gates in different regions share only the inter-die part.
/// The marginal per-gate distribution is IDENTICAL to the base model's —
/// only the correlation structure changes, which is exactly what the
/// non-spatial engines get wrong (see bench_ext_spatial).

#pragma once

#include <cmath>
#include <vector>

#include "spatial/placement.hpp"
#include "tech/variation.hpp"
#include "util/error.hpp"

namespace statleak {

struct SpatialVariationModel {
  VariationModel base;
  int grid = 4;  ///< grid x grid regions
  /// Fraction of the intra-die VARIANCE that is region-shared.
  double region_fraction_l = 0.5;
  double region_fraction_v = 0.25;

  void validate() const;

  int num_regions() const { return grid * grid; }
  /// Region index of a placed point.
  int region_of(const Point& p) const;

  // --- variance split -----------------------------------------------------
  double sigma_l_region_nm() const {
    return std::sqrt(region_fraction_l) * base.sigma_l_intra_nm;
  }
  double sigma_l_local_nm() const {
    return std::sqrt(1.0 - region_fraction_l) * base.sigma_l_intra_nm;
  }
  double sigma_vth_region_v() const {
    return std::sqrt(region_fraction_v) * base.sigma_vth_intra_v;
  }
  double sigma_vth_local_v() const {
    return std::sqrt(1.0 - region_fraction_v) * base.sigma_vth_intra_v;
  }
};

/// One sampled die under the spatial model: inter-die components plus one
/// (dL, dVth) pair per region.
struct SpatialDieSample {
  GlobalSample global;
  std::vector<double> region_dl_nm;
  std::vector<double> region_dvth_v;
};

/// Draws the shared components of one die into a reused buffer (resize is a
/// no-op after the first call, so the Monte-Carlo loop does not allocate).
/// Inline for the same reason as the base-model helpers: the scalar and
/// batched engines must share one definition to issue the exact same
/// normal() call sequence.
inline void sample_spatial_die(const SpatialVariationModel& model, Rng& rng,
                               SpatialDieSample& die) {
  die.global = sample_global(model.base, rng);
  const int regions = model.num_regions();
  die.region_dl_nm.resize(static_cast<std::size_t>(regions));
  die.region_dvth_v.resize(static_cast<std::size_t>(regions));
  for (int r = 0; r < regions; ++r) {
    die.region_dl_nm[static_cast<std::size_t>(r)] =
        rng.normal(0.0, model.sigma_l_region_nm());
    die.region_dvth_v[static_cast<std::size_t>(r)] =
        rng.normal(0.0, model.sigma_vth_region_v());
  }
}

/// Draws the shared components of one die.
inline SpatialDieSample sample_spatial_die(const SpatialVariationModel& model,
                                           Rng& rng) {
  SpatialDieSample die;
  sample_spatial_die(model, rng, die);
  return die;
}

/// Draws one gate's total deviations given its region.
inline ParamSample sample_spatial_gate(const SpatialVariationModel& model,
                                       const SpatialDieSample& die, int region,
                                       Rng& rng) {
  STATLEAK_CHECK(region >= 0 && region < model.num_regions(),
                 "region index out of range");
  const auto r = static_cast<std::size_t>(region);
  ParamSample s;
  s.dl_nm = die.global.dl_nm + die.region_dl_nm[r] +
            rng.normal(0.0, model.sigma_l_local_nm());
  s.dvth_v = die.global.dvth_v + die.region_dvth_v[r] +
             rng.normal(0.0, model.sigma_vth_local_v());
  return s;
}

}  // namespace statleak
