/// \file placement.hpp
/// \brief Synthetic gate placement for spatial-correlation modeling.
///
/// Spatially correlated variation needs gate coordinates. Real placements
/// come from a placer; statleak synthesizes a structurally faithful one:
/// gates flow left-to-right by logic level (x = level / depth) and are
/// spread vertically by their order within the level, with deterministic
/// jitter so region boundaries are not aligned with logic structure. This
/// mirrors the standard-row placements the spatial-SSTA literature assumes.

#pragma once

#include <cstdint>
#include <vector>

#include "netlist/circuit.hpp"

namespace statleak {

/// A location in the unit square.
struct Point {
  double x = 0.0;
  double y = 0.0;
};

/// One coordinate per gate (indexed by GateId). Deterministic per seed.
std::vector<Point> make_topological_placement(const Circuit& circuit,
                                              std::uint64_t seed = 1);

}  // namespace statleak
