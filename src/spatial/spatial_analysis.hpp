/// \file spatial_analysis.hpp
/// \brief Leakage distribution and Monte Carlo under the spatial model.
///
/// The per-gate marginal leakage distribution is unchanged by the spatial
/// split (the variance budget is preserved), but the pairwise covariance is
/// not: same-region pairs share the region components on top of the
/// inter-die ones. With region sums A_r = sum of E[I_i] over region r and
/// A = sum_r A_r, the exact total variance is
///
///   Var[S] = sum_i Var_i
///          + (K_g  - 1) * (A^2 - sum_r A_r^2)            (cross-region)
///          + (K_gr - 1) * (sum_r A_r^2 - sum_i E_i^2)    (same-region)
///
/// with K_g = exp(cL^2 sLg^2 + cV^2 sVg^2) and K_gr additionally including
/// the region variances. Wilkinson moment matching then proceeds as in the
/// flat model.

#pragma once

#include <vector>

#include "cells/library.hpp"
#include "leakage/leakage.hpp"
#include "mc/monte_carlo.hpp"
#include "netlist/circuit.hpp"
#include "obs/registry.hpp"
#include "spatial/spatial_model.hpp"

namespace statleak {

/// Analytic total-leakage distribution under the spatial model.
LeakageDistribution spatial_leakage_distribution(
    const Circuit& circuit, const CellLibrary& lib,
    const SpatialVariationModel& model, const std::vector<Point>& placement);

/// Monte-Carlo reference under the spatial model (same result shape as
/// run_monte_carlo; sampling draws per-region shared components). Honours
/// McConfig::use_batched/batch_size like the flat engine — batched output
/// is bit-identical to the scalar path. With a registry attached, records
/// the "mc.spatial_samples" phase time and the "mc.spatial_samples",
/// "mc.spatial_batches" and "flat.build_ns" counters; sample values are
/// unaffected.
McResult run_monte_carlo_spatial(const Circuit& circuit,
                                 const CellLibrary& lib,
                                 const SpatialVariationModel& model,
                                 const std::vector<Point>& placement,
                                 const McConfig& config,
                                 obs::Registry* obs = nullptr);

}  // namespace statleak
