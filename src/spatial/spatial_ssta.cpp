#include "spatial/spatial_ssta.hpp"

#include <algorithm>
#include <cmath>

#include "sta/loads.hpp"
#include "util/clark.hpp"
#include "util/error.hpp"
#include "util/normal.hpp"

namespace statleak {

double VectorCanonical::variance() const {
  double v = loc * loc;
  for (double gi : g) v += gi * gi;
  return v;
}

double VectorCanonical::sigma() const { return std::sqrt(variance()); }

double VectorCanonical::cdf(double t) const {
  return normal_cdf(t, mean, sigma());
}

double VectorCanonical::quantile(double p) const {
  return normal_quantile(p, mean, sigma());
}

VectorCanonical VectorCanonical::sum(const VectorCanonical& a,
                                     const VectorCanonical& b) {
  STATLEAK_CHECK(a.g.empty() || b.g.empty() || a.g.size() == b.g.size(),
                 "canonical source-vector length mismatch");
  VectorCanonical out;
  out.mean = a.mean + b.mean;
  const std::size_t n = std::max(a.g.size(), b.g.size());
  out.g.assign(n, 0.0);
  for (std::size_t i = 0; i < a.g.size(); ++i) out.g[i] += a.g[i];
  for (std::size_t i = 0; i < b.g.size(); ++i) out.g[i] += b.g[i];
  out.loc = std::sqrt(a.loc * a.loc + b.loc * b.loc);
  return out;
}

VectorCanonical VectorCanonical::max(const VectorCanonical& a,
                                     const VectorCanonical& b,
                                     double* tightness_out) {
  STATLEAK_CHECK(a.g.empty() || b.g.empty() || a.g.size() == b.g.size(),
                 "canonical source-vector length mismatch");
  const double var_a = a.variance();
  const double var_b = b.variance();
  const double sig_a = std::sqrt(var_a);
  const double sig_b = std::sqrt(var_b);

  double rho = 0.0;
  if (sig_a > 0.0 && sig_b > 0.0) {
    double dot = 0.0;
    const std::size_t n = std::min(a.g.size(), b.g.size());
    for (std::size_t i = 0; i < n; ++i) dot += a.g[i] * b.g[i];
    rho = std::clamp(dot / (sig_a * sig_b), -1.0, 1.0);
  }

  const ClarkMax cm = clark_max(a.mean, var_a, b.mean, var_b, rho);
  if (tightness_out != nullptr) *tightness_out = cm.tightness;

  VectorCanonical out;
  out.mean = cm.mean;
  const std::size_t n = std::max(a.g.size(), b.g.size());
  out.g.assign(n, 0.0);
  for (std::size_t i = 0; i < a.g.size(); ++i) {
    out.g[i] += cm.tightness * a.g[i];
  }
  for (std::size_t i = 0; i < b.g.size(); ++i) {
    out.g[i] += (1.0 - cm.tightness) * b.g[i];
  }
  double shared_var = 0.0;
  for (double gi : out.g) shared_var += gi * gi;
  out.loc = std::sqrt(std::max(0.0, cm.variance - shared_var));
  return out;
}

SpatialSstaEngine::SpatialSstaEngine(const Circuit& circuit,
                                     const CellLibrary& lib,
                                     const SpatialVariationModel& model,
                                     const std::vector<Point>& placement)
    : circuit_(circuit), lib_(lib), model_(model) {
  model_.validate();
  STATLEAK_CHECK(placement.size() == circuit.num_gates(),
                 "one placement point per gate");
  regions_.reserve(circuit.num_gates());
  for (const Point& p : placement) regions_.push_back(model.region_of(p));
  loads_ff_.resize(circuit.num_gates());
  for (GateId id = 0; id < circuit.num_gates(); ++id) {
    loads_ff_[id] = output_load_ff(circuit, lib, id);
  }
}

std::size_t SpatialSstaEngine::num_sources() const {
  return 2 + 2 * static_cast<std::size_t>(model_.num_regions());
}

int SpatialSstaEngine::region_of(GateId id) const {
  STATLEAK_CHECK(id < regions_.size(), "gate id out of range");
  return regions_[id];
}

VectorCanonical SpatialSstaEngine::gate_delay(GateId id) const {
  const Gate& gate = circuit_.gate(id);
  VectorCanonical d;
  d.g.assign(num_sources(), 0.0);
  if (gate.kind == CellKind::kInput) return d;

  const double d0 =
      lib_.delay_ps(gate.kind, gate.vth, gate.size, loads_ff_[id]);
  const auto& s = lib_.sensitivities(gate.vth);
  const auto regions = static_cast<std::size_t>(model_.num_regions());
  const auto r = static_cast<std::size_t>(regions_[id]);

  d.mean = d0;
  d.g[0] = d0 * s.delay_sl_per_nm * model_.base.sigma_l_inter_nm;
  d.g[1] = d0 * s.delay_sv_per_v * model_.base.sigma_vth_inter_v;
  d.g[2 + r] = d0 * s.delay_sl_per_nm * model_.sigma_l_region_nm();
  d.g[2 + regions + r] = d0 * s.delay_sv_per_v * model_.sigma_vth_region_v();
  const double loc_l = d0 * s.delay_sl_per_nm * model_.sigma_l_local_nm();
  const double loc_v = d0 * s.delay_sv_per_v * model_.sigma_vth_local_v();
  d.loc = std::sqrt(loc_l * loc_l + loc_v * loc_v);
  return d;
}

VectorCanonical SpatialSstaEngine::circuit_delay() const {
  if (obs_ != nullptr) obs_->add("ssta.spatial_passes", 1.0);
  std::vector<VectorCanonical> arrival(circuit_.num_gates());
  for (GateId id : circuit_.topo_order()) {
    const Gate& g = circuit_.gate(id);
    if (g.kind == CellKind::kInput) continue;
    VectorCanonical in_max = arrival[g.fanins[0]];
    for (std::size_t pin = 1; pin < g.fanins.size(); ++pin) {
      in_max = VectorCanonical::max(in_max, arrival[g.fanins[pin]]);
    }
    arrival[id] = VectorCanonical::sum(in_max, gate_delay(id));
  }
  VectorCanonical out = arrival[circuit_.outputs()[0]];
  for (std::size_t i = 1; i < circuit_.outputs().size(); ++i) {
    out = VectorCanonical::max(out, arrival[circuit_.outputs()[i]]);
  }
  return out;
}

}  // namespace statleak
