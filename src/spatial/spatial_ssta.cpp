#include "spatial/spatial_ssta.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <utility>

#include "sta/loads.hpp"
#include "util/clark.hpp"
#include "util/error.hpp"
#include "util/normal.hpp"

namespace statleak {

double VectorCanonical::variance() const {
  double v = loc * loc;
  for (double gi : g) v += gi * gi;
  return v;
}

double VectorCanonical::sigma() const { return std::sqrt(variance()); }

double VectorCanonical::cdf(double t) const {
  return normal_cdf(t, mean, sigma());
}

double VectorCanonical::quantile(double p) const {
  return normal_quantile(p, mean, sigma());
}

VectorCanonical VectorCanonical::sum(const VectorCanonical& a,
                                     const VectorCanonical& b) {
  STATLEAK_CHECK(a.g.empty() || b.g.empty() || a.g.size() == b.g.size(),
                 "canonical source-vector length mismatch");
  VectorCanonical out;
  out.mean = a.mean + b.mean;
  const std::size_t n = std::max(a.g.size(), b.g.size());
  out.g.assign(n, 0.0);
  for (std::size_t i = 0; i < a.g.size(); ++i) out.g[i] += a.g[i];
  for (std::size_t i = 0; i < b.g.size(); ++i) out.g[i] += b.g[i];
  out.loc = std::sqrt(a.loc * a.loc + b.loc * b.loc);
  return out;
}

VectorCanonical VectorCanonical::max(const VectorCanonical& a,
                                     const VectorCanonical& b,
                                     double* tightness_out) {
  STATLEAK_CHECK(a.g.empty() || b.g.empty() || a.g.size() == b.g.size(),
                 "canonical source-vector length mismatch");
  const double var_a = a.variance();
  const double var_b = b.variance();
  const double sig_a = std::sqrt(var_a);
  const double sig_b = std::sqrt(var_b);

  double rho = 0.0;
  if (sig_a > 0.0 && sig_b > 0.0) {
    double dot = 0.0;
    const std::size_t n = std::min(a.g.size(), b.g.size());
    for (std::size_t i = 0; i < n; ++i) dot += a.g[i] * b.g[i];
    rho = std::clamp(dot / (sig_a * sig_b), -1.0, 1.0);
  }

  const ClarkMax cm = clark_max(a.mean, var_a, b.mean, var_b, rho);
  if (tightness_out != nullptr) *tightness_out = cm.tightness;

  VectorCanonical out;
  out.mean = cm.mean;
  const std::size_t n = std::max(a.g.size(), b.g.size());
  out.g.assign(n, 0.0);
  for (std::size_t i = 0; i < a.g.size(); ++i) {
    out.g[i] += cm.tightness * a.g[i];
  }
  for (std::size_t i = 0; i < b.g.size(); ++i) {
    out.g[i] += (1.0 - cm.tightness) * b.g[i];
  }
  double shared_var = 0.0;
  for (double gi : out.g) shared_var += gi * gi;
  out.loc = std::sqrt(std::max(0.0, cm.variance - shared_var));
  return out;
}

SpatialSstaEngine::SpatialSstaEngine(const Circuit& circuit,
                                     const CellLibrary& lib,
                                     const SpatialVariationModel& model,
                                     const std::vector<Point>& placement)
    : circuit_(circuit), lib_(lib), model_(model) {
  model_.validate();
  STATLEAK_CHECK(placement.size() == circuit.num_gates(),
                 "one placement point per gate");
  regions_.reserve(circuit.num_gates());
  for (const Point& p : placement) regions_.push_back(model.region_of(p));
  const std::size_t n = circuit.num_gates();
  loads_ff_.resize(n);
  for (GateId id = 0; id < n; ++id) {
    loads_ff_[id] = output_load_ff(circuit, lib, id);
  }
  arrival_.resize(n);
  queued_.assign(n, 0);
  touched_.assign(n, 0);
  buckets_.assign(static_cast<std::size_t>(circuit.depth()) + 1, {});
}

// ------------------------------------------------------- notifications ----

void SpatialSstaEngine::mark_dirty(GateId id) {
  if (queued_[id] == 0) {
    queued_[id] = 1;
    pending_.push_back(id);
  }
}

void SpatialSstaEngine::on_resize(GateId id) {
  for (GateId driver : circuit_.gate(id).fanins) {
    if (trial_active_ && (touched_[driver] & 2) == 0) {
      touched_[driver] = static_cast<char>(touched_[driver] | 2);
      touched_list_.push_back(driver);
      load_undo_.push_back({driver, loads_ff_[driver]});
    }
    loads_ff_[driver] = output_load_ff(circuit_, lib_, driver);
    mark_dirty(driver);
  }
  mark_dirty(id);
}

void SpatialSstaEngine::on_vth_change(GateId id) { mark_dirty(id); }

void SpatialSstaEngine::clear_pending() const {
  for (GateId id : pending_) queued_[id] = 0;
  pending_.clear();
}

// --------------------------------------------------------------- trials ----

void SpatialSstaEngine::begin_trial() {
  STATLEAK_CHECK(!trial_active_, "trials do not nest");
  trial_active_ = true;
  trial_lost_baseline_ = false;
  trial_primed_ = primed_;
  trial_pending_ = pending_;
  trial_out_max_ = out_max_;
}

void SpatialSstaEngine::commit_trial() {
  STATLEAK_CHECK(trial_active_, "no trial to commit");
  trial_active_ = false;
  trial_lost_baseline_ = false;
  for (GateId id : touched_list_) touched_[id] = 0;
  touched_list_.clear();
  arrival_undo_.clear();
  load_undo_.clear();
  trial_pending_.clear();
}

void SpatialSstaEngine::rollback_trial() {
  STATLEAK_CHECK(trial_active_, "no trial to roll back");
  trial_active_ = false;
  for (const LoadUndo& u : load_undo_) loads_ff_[u.id] = u.load_ff;
  if (trial_lost_baseline_) {
    primed_ = false;  // next query recomputes from scratch — still exact
  } else {
    primed_ = trial_primed_;
    for (ArrivalUndo& u : arrival_undo_) {
      arrival_[u.id] = std::move(u.arrival);
    }
    out_max_ = std::move(trial_out_max_);
  }
  clear_pending();
  for (GateId id : trial_pending_) {
    queued_[id] = 1;
    pending_.push_back(id);
  }
  for (GateId id : touched_list_) touched_[id] = 0;
  touched_list_.clear();
  arrival_undo_.clear();
  load_undo_.clear();
  trial_pending_.clear();
  trial_lost_baseline_ = false;
}

void SpatialSstaEngine::log_arrival(GateId id) const {
  if (!trial_active_ || trial_lost_baseline_ || (touched_[id] & 1) != 0) {
    return;
  }
  touched_[id] = static_cast<char>(touched_[id] | 1);
  touched_list_.push_back(id);
  arrival_undo_.push_back({id, arrival_[id]});
}

std::size_t SpatialSstaEngine::num_sources() const {
  return 2 + 2 * static_cast<std::size_t>(model_.num_regions());
}

int SpatialSstaEngine::region_of(GateId id) const {
  STATLEAK_CHECK(id < regions_.size(), "gate id out of range");
  return regions_[id];
}

VectorCanonical SpatialSstaEngine::gate_delay(GateId id) const {
  const Gate& gate = circuit_.gate(id);
  VectorCanonical d;
  d.g.assign(num_sources(), 0.0);
  if (gate.kind == CellKind::kInput) return d;

  const double d0 =
      lib_.delay_ps(gate.kind, gate.vth, gate.size, loads_ff_[id]);
  const auto& s = lib_.sensitivities(gate.vth);
  const auto regions = static_cast<std::size_t>(model_.num_regions());
  const auto r = static_cast<std::size_t>(regions_[id]);

  d.mean = d0;
  d.g[0] = d0 * s.delay_sl_per_nm * model_.base.sigma_l_inter_nm;
  d.g[1] = d0 * s.delay_sv_per_v * model_.base.sigma_vth_inter_v;
  d.g[2 + r] = d0 * s.delay_sl_per_nm * model_.sigma_l_region_nm();
  d.g[2 + regions + r] = d0 * s.delay_sv_per_v * model_.sigma_vth_region_v();
  const double loc_l = d0 * s.delay_sl_per_nm * model_.sigma_l_local_nm();
  const double loc_v = d0 * s.delay_sv_per_v * model_.sigma_vth_local_v();
  d.loc = std::sqrt(loc_l * loc_l + loc_v * loc_v);
  return d;
}

// ------------------------------------------------------------ retiming ----

namespace {
bool same_vcanonical(const VectorCanonical& a, const VectorCanonical& b) {
  return a.mean == b.mean && a.loc == b.loc && a.g == b.g;
}
}  // namespace

bool SpatialSstaEngine::retime_gate(GateId id) const {
  const Gate& g = circuit_.gate(id);
  VectorCanonical fresh;
  if (g.kind != CellKind::kInput) {
    VectorCanonical in_max = arrival_[g.fanins[0]];
    for (std::size_t pin = 1; pin < g.fanins.size(); ++pin) {
      in_max = VectorCanonical::max(in_max, arrival_[g.fanins[pin]]);
    }
    fresh = VectorCanonical::sum(in_max, gate_delay(id));
  }
  const bool changed = !same_vcanonical(fresh, arrival_[id]);
  log_arrival(id);
  arrival_[id] = std::move(fresh);
  return changed;
}

void SpatialSstaEngine::recompute_output_max() const {
  VectorCanonical out = arrival_[circuit_.outputs()[0]];
  for (std::size_t i = 1; i < circuit_.outputs().size(); ++i) {
    out = VectorCanonical::max(out, arrival_[circuit_.outputs()[i]]);
  }
  out_max_ = std::move(out);
}

void SpatialSstaEngine::full_pass() const {
  if (trial_active_) trial_lost_baseline_ = true;
  if (obs_ != nullptr) obs_->add("ssta.spatial_full_passes", 1.0);
  const std::size_t n = circuit_.num_gates();
  arrival_.assign(n, VectorCanonical{});
  for (GateId id : circuit_.topo_order()) {
    const Gate& g = circuit_.gate(id);
    if (g.kind == CellKind::kInput) continue;
    VectorCanonical in_max = arrival_[g.fanins[0]];
    for (std::size_t pin = 1; pin < g.fanins.size(); ++pin) {
      in_max = VectorCanonical::max(in_max, arrival_[g.fanins[pin]]);
    }
    arrival_[id] = VectorCanonical::sum(in_max, gate_delay(id));
  }
  recompute_output_max();
  clear_pending();
  primed_ = true;
}

void SpatialSstaEngine::flush() const {
  if (!primed_ || !incremental_) {
    full_pass();
    return;
  }
  if (pending_.empty()) return;
  if (obs_ != nullptr) obs_->add("ssta.spatial_incremental_passes", 1.0);

  for (GateId id : pending_) {
    buckets_[static_cast<std::size_t>(circuit_.level(id))].push_back(id);
  }
  pending_.clear();

  std::int64_t retimed = 0;
  bool output_changed = false;
  for (auto& bucket : buckets_) {
    for (std::size_t i = 0; i < bucket.size(); ++i) {
      const GateId id = bucket[i];
      queued_[id] = 0;
      ++retimed;
      if (!retime_gate(id)) continue;  // bit-identical: cone stops here
      if (circuit_.is_output(id)) output_changed = true;
      for (GateId fo : circuit_.fanouts(id)) {
        if (queued_[fo] == 0) {
          queued_[fo] = 1;
          buckets_[static_cast<std::size_t>(circuit_.level(fo))].push_back(
              fo);
        }
      }
    }
    bucket.clear();
  }

  if (output_changed) recompute_output_max();
  if (obs_ != nullptr) {
    obs_->add("ssta.spatial_cone_gates_retimed",
              static_cast<double>(retimed));
  }
}

VectorCanonical SpatialSstaEngine::circuit_delay() const {
  if (obs_ != nullptr) obs_->add("ssta.spatial_passes", 1.0);
  flush();
  return out_max_;
}

}  // namespace statleak
