#include "tech/process.hpp"

#include <cmath>

#include "util/error.hpp"

namespace statleak {

const char* to_string(Vth vth) { return vth == Vth::kLow ? "LVT" : "HVT"; }

void ProcessNode::validate() const {
  STATLEAK_CHECK(vdd > 0.0, "vdd must be positive");
  STATLEAK_CHECK(leff_nm > 0.0, "leff must be positive");
  STATLEAK_CHECK(temperature_k > 0.0, "temperature must be positive");
  // The sub-threshold slope, Ioff prefactor, Vth corners and drive constant
  // are all functions of temperature; they are only meaningful at the
  // temperature they were calibrated for. Editing temperature_k alone would
  // silently keep 100 C constants — force the at_temperature() path instead.
  STATLEAK_CHECK(std::abs(temperature_k - calib_temperature_k) <= 1e-9,
                 "temperature_k differs from calib_temperature_k: constants "
                 "are calibrated per temperature; retarget with "
                 "at_temperature() instead of editing temperature_k");
  STATLEAK_CHECK(vth_low > 0.0 && vth_high > vth_low,
                 "need 0 < vth_low < vth_high");
  STATLEAK_CHECK(vth_high < vdd, "vth_high must be below vdd");
  STATLEAK_CHECK(subthreshold_slope > 0.0, "subthreshold slope must be > 0");
  STATLEAK_CHECK(i0_na_per_um > 0.0, "leakage prefactor must be positive");
  STATLEAK_CHECK(vth_rolloff_v_per_nm >= 0.0, "roll-off must be >= 0");
  STATLEAK_CHECK(alpha >= 1.0 && alpha <= 2.0,
                 "alpha-power index must be in [1, 2]");
  STATLEAK_CHECK(k_drive_ua_per_um > 0.0, "drive constant must be positive");
  STATLEAK_CHECK(k_delay > 0.0, "delay constant must be positive");
  STATLEAK_CHECK(cg_ff_per_um > 0.0 && cj_ff_per_um >= 0.0,
                 "capacitances must be positive");
  STATLEAK_CHECK(wn_unit_um > 0.0 && pn_ratio > 0.0,
                 "unit geometry must be positive");
  STATLEAK_CHECK(vth_tc_v_per_k >= 0.0, "Vth temperature coeff must be >= 0");
  STATLEAK_CHECK(mobility_exponent >= 0.0 && mobility_exponent <= 3.0,
                 "mobility exponent must be in [0, 3]");
  STATLEAK_CHECK(dibl_v_per_v >= 0.0, "DIBL coefficient must be >= 0");
}

ProcessNode generic_100nm() {
  ProcessNode node;
  node.name = "generic-100nm";
  // Defaults in the struct are the 100 nm calibration.
  node.validate();
  return node;
}

ProcessNode generic_70nm() {
  ProcessNode node;
  node.name = "generic-70nm";
  node.vdd = 1.0;
  node.leff_nm = 42.0;
  node.vth_low = 0.18;
  node.vth_high = 0.29;
  node.subthreshold_slope = 0.105;   // hotter, worse electrostatics
  node.i0_na_per_um = 6000.0;        // leakier baseline
  node.vth_rolloff_v_per_nm = 0.0016;  // steeper roll-off at shorter L
  node.alpha = 1.25;
  node.k_drive_ua_per_um = 750.0;
  node.cg_ff_per_um = 1.25;
  node.cj_ff_per_um = 0.85;
  node.cw_fixed_ff = 0.45;
  node.cw_per_fanout_ff = 0.20;
  node.wn_unit_um = 0.35;
  node.dibl_v_per_v = 0.10;  // shorter channel, stronger drain coupling
  node.validate();
  return node;
}

ProcessNode generic_130nm() {
  ProcessNode node;
  node.name = "generic-130nm";
  node.vdd = 1.5;
  node.leff_nm = 80.0;
  node.vth_low = 0.22;
  node.vth_high = 0.35;
  node.subthreshold_slope = 0.095;   // longer channel, better electrostatics
  node.i0_na_per_um = 1200.0;
  node.vth_rolloff_v_per_nm = 0.0007;
  node.alpha = 1.35;
  node.k_drive_ua_per_um = 520.0;
  node.cg_ff_per_um = 1.70;
  node.cj_ff_per_um = 1.15;
  node.cw_fixed_ff = 0.75;
  node.cw_per_fanout_ff = 0.30;
  node.wn_unit_um = 0.60;
  node.dibl_v_per_v = 0.06;
  node.validate();
  return node;
}

ProcessNode generic_100nm_lp() {
  ProcessNode node = generic_100nm();
  node.name = "generic-100nm-lp";
  node.vth_low = 0.26;               // raised corners trade drive for Ioff
  node.vth_high = 0.40;
  node.subthreshold_slope = 0.095;
  node.i0_na_per_um = 900.0;
  node.k_drive_ua_per_um = 520.0;
  node.validate();
  return node;
}

ProcessNode generic_70nm_lp() {
  ProcessNode node = generic_70nm();
  node.name = "generic-70nm-lp";
  node.vth_low = 0.24;
  node.vth_high = 0.36;
  node.subthreshold_slope = 0.100;
  node.i0_na_per_um = 1800.0;
  node.k_drive_ua_per_um = 640.0;
  node.validate();
  return node;
}

namespace {

using NodeFactory = ProcessNode (*)();

struct NodeEntry {
  const char* name;
  NodeFactory make;
};

constexpr NodeEntry kNodeRegistry[] = {
    {"generic-100nm", &generic_100nm},
    {"generic-70nm", &generic_70nm},
    {"generic-130nm", &generic_130nm},
    {"generic-100nm-lp", &generic_100nm_lp},
    {"generic-70nm-lp", &generic_70nm_lp},
};

}  // namespace

std::vector<std::string> process_node_names() {
  std::vector<std::string> names;
  for (const NodeEntry& entry : kNodeRegistry) names.emplace_back(entry.name);
  return names;
}

ProcessNode process_node_by_name(const std::string& name) {
  // Numeric aliases keep the original `--node 100|70` CLI contract working.
  const std::string resolved = name == "100"  ? "generic-100nm"
                               : name == "70" ? "generic-70nm"
                                              : name;
  for (const NodeEntry& entry : kNodeRegistry) {
    if (resolved == entry.name) return entry.make();
  }
  std::string known;
  for (const NodeEntry& entry : kNodeRegistry) {
    if (!known.empty()) known += ", ";
    known += entry.name;
  }
  throw Error("unknown process node '" + name + "' (known: " + known +
              "; aliases: 100, 70)");
}

ProcessNode at_temperature(ProcessNode node, double t_k) {
  STATLEAK_CHECK(t_k > 0.0, "temperature must be positive");
  if (t_k == node.temperature_k) return node;
  const double t0 = node.calib_temperature_k;
  const double ratio = t_k / t0;
  node.subthreshold_slope *= ratio;              // S = n*kT/q * ln10 ~ T
  node.i0_na_per_um *= ratio * ratio;            // Ioff prefactor ~ T^2
  const double dvth = node.vth_tc_v_per_k * (t_k - t0);
  node.vth_low -= dvth;                          // barriers drop when hot
  node.vth_high -= dvth;
  node.k_drive_ua_per_um *=
      std::pow(ratio, -node.mobility_exponent);  // phonon-limited mobility
  node.temperature_k = t_k;
  node.calib_temperature_k = t_k;  // constants now describe the new T
  node.validate();
  return node;
}

ProcessNode at_vdd(ProcessNode node, double vdd_v) {
  STATLEAK_CHECK(vdd_v > 0.0, "vdd must be positive");
  if (vdd_v == node.vdd) return node;
  const double dvth = node.dibl_v_per_v * (node.vdd - vdd_v);
  node.vth_low += dvth;   // less drain-induced barrier lowering at low Vdd
  node.vth_high += dvth;
  node.vdd = vdd_v;
  node.validate();
  return node;
}

ProcessNode at_corner(ProcessNode node, double t_k, double vdd_v) {
  if (t_k > 0.0) node = at_temperature(std::move(node), t_k);
  if (vdd_v > 0.0) node = at_vdd(std::move(node), vdd_v);
  return node;
}

}  // namespace statleak
