#include "tech/process.hpp"

#include "util/error.hpp"

namespace statleak {

const char* to_string(Vth vth) { return vth == Vth::kLow ? "LVT" : "HVT"; }

void ProcessNode::validate() const {
  STATLEAK_CHECK(vdd > 0.0, "vdd must be positive");
  STATLEAK_CHECK(leff_nm > 0.0, "leff must be positive");
  STATLEAK_CHECK(vth_low > 0.0 && vth_high > vth_low,
                 "need 0 < vth_low < vth_high");
  STATLEAK_CHECK(vth_high < vdd, "vth_high must be below vdd");
  STATLEAK_CHECK(subthreshold_slope > 0.0, "subthreshold slope must be > 0");
  STATLEAK_CHECK(i0_na_per_um > 0.0, "leakage prefactor must be positive");
  STATLEAK_CHECK(vth_rolloff_v_per_nm >= 0.0, "roll-off must be >= 0");
  STATLEAK_CHECK(alpha >= 1.0 && alpha <= 2.0,
                 "alpha-power index must be in [1, 2]");
  STATLEAK_CHECK(k_drive_ua_per_um > 0.0, "drive constant must be positive");
  STATLEAK_CHECK(k_delay > 0.0, "delay constant must be positive");
  STATLEAK_CHECK(cg_ff_per_um > 0.0 && cj_ff_per_um >= 0.0,
                 "capacitances must be positive");
  STATLEAK_CHECK(wn_unit_um > 0.0 && pn_ratio > 0.0,
                 "unit geometry must be positive");
}

ProcessNode generic_100nm() {
  ProcessNode node;
  node.name = "generic-100nm";
  // Defaults in the struct are the 100 nm calibration.
  node.validate();
  return node;
}

ProcessNode generic_70nm() {
  ProcessNode node;
  node.name = "generic-70nm";
  node.vdd = 1.0;
  node.leff_nm = 42.0;
  node.vth_low = 0.18;
  node.vth_high = 0.29;
  node.subthreshold_slope = 0.105;   // hotter, worse electrostatics
  node.i0_na_per_um = 6000.0;        // leakier baseline
  node.vth_rolloff_v_per_nm = 0.0016;  // steeper roll-off at shorter L
  node.alpha = 1.25;
  node.k_drive_ua_per_um = 750.0;
  node.cg_ff_per_um = 1.25;
  node.cj_ff_per_um = 0.85;
  node.cw_fixed_ff = 0.45;
  node.cw_per_fanout_ff = 0.20;
  node.wn_unit_um = 0.35;
  node.validate();
  return node;
}

}  // namespace statleak
