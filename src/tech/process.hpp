/// \file process.hpp
/// \brief Technology-node description for a generic dual-Vth CMOS process.
///
/// The DAC'04 paper calibrates against a Berkeley Predictive Technology Model
/// (BPTM) 100 nm-class process. Those SPICE decks are not redistributable
/// here, so statleak ships closed-form device models parameterized by the
/// published headline constants of such a node (Vdd, Leff, sub-threshold
/// slope, dual-Vth values, drive strength, caps). See DESIGN.md §3 for the
/// substitution argument: the optimization consumes only
/// (delay, leakage) = f(size, Vth, load, dL, dVth), and these closed forms
/// preserve the functional sensitivities that drive every conclusion —
/// delay linear in dL/dVth, leakage exponential in them.
///
/// Unit conventions used throughout statleak:
///   length nm · width um · capacitance fF · time ps · leakage current nA ·
///   drive current uA · voltage V · leakage power nW.

#pragma once

#include <string>

namespace statleak {

/// Threshold-voltage class of a cell. The dual-Vth flow assigns each gate to
/// one of exactly two classes.
enum class Vth { kLow, kHigh };

/// Short display name ("LVT" / "HVT").
const char* to_string(Vth vth);

/// All parameters of a technology node consumed by the device models.
struct ProcessNode {
  std::string name;

  double vdd = 1.2;              ///< supply voltage [V]
  double leff_nm = 60.0;         ///< nominal effective channel length [nm]
  double temperature_k = 373.0;  ///< analysis temperature [K] (100 C)

  // --- dual-Vth corners -----------------------------------------------
  double vth_low = 0.20;   ///< low (fast, leaky) threshold [V]
  double vth_high = 0.32;  ///< high (slow, low-leakage) threshold [V]

  // --- sub-threshold leakage ------------------------------------------
  /// Sub-threshold swing S [V/decade] at the analysis temperature.
  double subthreshold_slope = 0.100;
  /// Leakage prefactor: Ioff of a 1 um-wide device extrapolated to Vth = 0
  /// [nA/um]. Calibrated so a 100 nm-class LVT device leaks ~30 nA/um.
  double i0_na_per_um = 3000.0;
  /// Vth roll-off slope dVth/dL [V/nm]: shorter channel -> lower Vth ->
  /// exponentially higher leakage. Positive value; Vth_eff = Vth + rolloff*dL.
  double vth_rolloff_v_per_nm = 0.0010;
  /// Optional second-order channel-length exponent [1/nm^2] in
  /// ln Ioff = ln Inom - cL*dL - cV*dVth + q*dL^2. Zero in the canonical
  /// linear-exponent (lognormal) model; exercised by the ablation bench.
  double leak_quadratic_per_nm2 = 0.0;

  // --- drive / delay ----------------------------------------------------
  double alpha = 1.30;          ///< alpha-power-law velocity-saturation index
  double k_drive_ua_per_um = 600.0;  ///< Idsat of 1 um LVT device / (Vdd-Vth)^alpha [uA/um/V^alpha]
  double k_delay = 0.69;        ///< delay fitting constant (RC-style 0.69)

  // --- capacitance -------------------------------------------------------
  double cg_ff_per_um = 1.50;    ///< gate input capacitance [fF/um]
  double cj_ff_per_um = 1.00;    ///< drain junction capacitance [fF/um]
  double cw_fixed_ff = 0.60;     ///< fixed wire capacitance per net [fF]
  double cw_per_fanout_ff = 0.25;  ///< incremental wire cap per fanout [fF]

  // --- geometry ----------------------------------------------------------
  double wn_unit_um = 0.5;  ///< NMOS width of the unit (size-1) inverter [um]
  double pn_ratio = 1.8;    ///< PMOS/NMOS width ratio of all cells

  /// Threshold voltage of the given class [V].
  double vth_of(Vth vth) const {
    return vth == Vth::kLow ? vth_low : vth_high;
  }

  /// Throws statleak::Error if any parameter is non-physical.
  void validate() const;
};

/// Generic 100 nm-class node (BPTM/ITRS-2003-era constants). The default
/// technology for all experiments.
ProcessNode generic_100nm();

/// Generic 70 nm-class node: scaled Vdd/Leff, steeper roll-off, leakier.
/// Used to show trends across nodes.
ProcessNode generic_70nm();

}  // namespace statleak
