/// \file process.hpp
/// \brief Technology-node description for a generic dual-Vth CMOS process.
///
/// The DAC'04 paper calibrates against a Berkeley Predictive Technology Model
/// (BPTM) 100 nm-class process. Those SPICE decks are not redistributable
/// here, so statleak ships closed-form device models parameterized by the
/// published headline constants of such a node (Vdd, Leff, sub-threshold
/// slope, dual-Vth values, drive strength, caps). See DESIGN.md §3 for the
/// substitution argument: the optimization consumes only
/// (delay, leakage) = f(size, Vth, load, dL, dVth), and these closed forms
/// preserve the functional sensitivities that drive every conclusion —
/// delay linear in dL/dVth, leakage exponential in them.
///
/// Unit conventions used throughout statleak:
///   length nm · width um · capacitance fF · time ps · leakage current nA ·
///   drive current uA · voltage V · leakage power nW.

#pragma once

#include <string>
#include <vector>

namespace statleak {

/// Threshold-voltage class of a cell. The dual-Vth flow assigns each gate to
/// one of exactly two classes.
enum class Vth { kLow, kHigh };

/// Short display name ("LVT" / "HVT").
const char* to_string(Vth vth);

/// All parameters of a technology node consumed by the device models.
struct ProcessNode {
  std::string name;

  double vdd = 1.2;              ///< supply voltage [V]
  double leff_nm = 60.0;         ///< nominal effective channel length [nm]
  double temperature_k = 373.0;  ///< analysis temperature [K] (100 C)
  /// Temperature [K] at which `subthreshold_slope`, `i0_na_per_um`, the Vth
  /// corners and `k_drive_ua_per_um` were calibrated. validate() rejects a
  /// node whose `temperature_k` was edited away from this without re-deriving
  /// the constants — use at_temperature() to retarget a node, which scales
  /// the constants and moves both fields together.
  double calib_temperature_k = 373.0;

  // --- dual-Vth corners -----------------------------------------------
  double vth_low = 0.20;   ///< low (fast, leaky) threshold [V]
  double vth_high = 0.32;  ///< high (slow, low-leakage) threshold [V]

  // --- sub-threshold leakage ------------------------------------------
  /// Sub-threshold swing S [V/decade] at the analysis temperature.
  double subthreshold_slope = 0.100;
  /// Leakage prefactor: Ioff of a 1 um-wide device extrapolated to Vth = 0
  /// [nA/um]. Calibrated so a 100 nm-class LVT device leaks ~30 nA/um.
  double i0_na_per_um = 3000.0;
  /// Vth roll-off slope dVth/dL [V/nm]: shorter channel -> lower Vth ->
  /// exponentially higher leakage. Positive value; Vth_eff = Vth + rolloff*dL.
  double vth_rolloff_v_per_nm = 0.0010;
  /// Optional second-order channel-length exponent [1/nm^2] in
  /// ln Ioff = ln Inom - cL*dL - cV*dVth + q*dL^2. Zero in the canonical
  /// linear-exponent (lognormal) model; exercised by the ablation bench.
  double leak_quadratic_per_nm2 = 0.0;

  // --- drive / delay ----------------------------------------------------
  double alpha = 1.30;          ///< alpha-power-law velocity-saturation index
  double k_drive_ua_per_um = 600.0;  ///< Idsat of 1 um LVT device / (Vdd-Vth)^alpha [uA/um/V^alpha]
  double k_delay = 0.69;        ///< delay fitting constant (RC-style 0.69)

  // --- capacitance -------------------------------------------------------
  double cg_ff_per_um = 1.50;    ///< gate input capacitance [fF/um]
  double cj_ff_per_um = 1.00;    ///< drain junction capacitance [fF/um]
  double cw_fixed_ff = 0.60;     ///< fixed wire capacitance per net [fF]
  double cw_per_fanout_ff = 0.25;  ///< incremental wire cap per fanout [fF]

  // --- geometry ----------------------------------------------------------
  double wn_unit_um = 0.5;  ///< NMOS width of the unit (size-1) inverter [um]
  double pn_ratio = 1.8;    ///< PMOS/NMOS width ratio of all cells

  // --- first-order environment scaling ------------------------------------
  /// Vth temperature coefficient [V/K]: Vth(T) = Vth(T0) - tc*(T - T0).
  /// ~0.5-1 mV/K for bulk CMOS of this era.
  double vth_tc_v_per_k = 0.0007;
  /// Mobility temperature exponent m: k_drive(T) = k_drive(T0)*(T/T0)^-m.
  double mobility_exponent = 1.5;
  /// DIBL-style Vdd sensitivity of Vth [V/V]: derating Vdd raises Vth by
  /// dibl*(Vdd_old - Vdd_new) (lower drain field -> less barrier lowering).
  double dibl_v_per_v = 0.08;

  /// Threshold voltage of the given class [V].
  double vth_of(Vth vth) const {
    return vth == Vth::kLow ? vth_low : vth_high;
  }

  /// Throws statleak::Error if any parameter is non-physical.
  void validate() const;
};

/// Generic 100 nm-class node (BPTM/ITRS-2003-era constants). The default
/// technology for all experiments.
ProcessNode generic_100nm();

/// Generic 70 nm-class node: scaled Vdd/Leff, steeper roll-off, leakier.
/// Used to show trends across nodes.
ProcessNode generic_70nm();

/// Generic 130 nm-class node: the previous generation — higher Vdd, longer
/// channel, gentler roll-off, an order of magnitude less leaky.
ProcessNode generic_130nm();

/// Low-power flavor of the 100 nm node: raised Vth corners and a smaller
/// Ioff prefactor trade drive for leakage.
ProcessNode generic_100nm_lp();

/// Low-power flavor of the 70 nm node.
ProcessNode generic_70nm_lp();

/// Names of all shipped presets, in registry order.
std::vector<std::string> process_node_names();

/// Look up a shipped preset by name. Accepts the numeric aliases "100" and
/// "70" for the two original nodes. Throws statleak::Error for unknown
/// names, listing the valid ones.
ProcessNode process_node_by_name(const std::string& name);

/// Retarget a node to temperature `t_k` [K] by first-order scaling of the
/// calibrated constants: S ~ T (thermal voltage), i0 ~ T^2 (sub-threshold
/// prefactor), Vth down by `vth_tc_v_per_k` per kelvin, drive mobility down
/// as (T/T0)^-m. Moves `temperature_k` and `calib_temperature_k` together
/// so the result validates. Returns the input unchanged (bit-identical)
/// when `t_k` equals the node's current temperature.
ProcessNode at_temperature(ProcessNode node, double t_k);

/// Derate the supply to `vdd_v` [V]. The Vth corners shift by
/// `dibl_v_per_v * (vdd_old - vdd_v)` (lower Vdd -> higher barrier).
/// Returns the input unchanged (bit-identical) when `vdd_v` equals the
/// node's current supply.
ProcessNode at_vdd(ProcessNode node, double vdd_v);

/// Apply an environment corner: temperature then supply. Non-positive
/// `t_k` / `vdd_v` mean "leave at the node's calibrated value". This is the
/// single resolution path shared by `statleak mc --temp/--vdd` and every
/// sweep-grid cell, which is what makes a sweep cell's population
/// bit-identical to the equivalent standalone run.
ProcessNode at_corner(ProcessNode node, double t_k, double vdd_v);

}  // namespace statleak
