/// \file variation.hpp
/// \brief Process-variation model: inter-die + intra-die dL and dVth.
///
/// Following the DAC'04 setup, two physical parameters vary:
///   dL    — effective channel-length deviation [nm]
///   dVth  — threshold-voltage deviation [V] (random dopant fluctuation etc.)
/// Each splits into an inter-die (globally shared across all gates of one
/// die) and an intra-die (independent per gate) Gaussian component:
///   dL_i    = dL_glob + dL_loc,i
///   dVth_i  = dVth_glob + dVth_loc,i
/// All four components are zero-mean and mutually independent.

#pragma once

#include <cmath>

#include "util/rng.hpp"

namespace statleak {

/// Standard deviations of the four variation components.
struct VariationModel {
  double sigma_l_inter_nm = 2.12;    ///< inter-die sigma of dL [nm]
  double sigma_l_intra_nm = 2.12;    ///< intra-die sigma of dL [nm]
  double sigma_vth_inter_v = 0.005;  ///< inter-die sigma of dVth [V]
  double sigma_vth_intra_v = 0.012;  ///< intra-die sigma of dVth [V]

  /// Pelgrom scaling of random-dopant-fluctuation Vth variation: when
  /// enabled, a gate's intra-die Vth sigma is
  ///   sigma_vth_intra_v * sqrt(pelgrom_ref_width_um / device_width_um),
  /// i.e. the nominal sigma applies to a device of the reference width and
  /// wider (upsized) gates average their dopant fluctuations away. This is
  /// the extension axis the paper's follow-on work explores: sizing then
  /// buys variance reduction on top of drive.
  bool pelgrom_vth_scaling = false;
  double pelgrom_ref_width_um = 1.4;  ///< width with nominal intra sigma

  /// Intra-die Vth sigma [V] of a gate whose total device width is
  /// `device_width_um` (returns sigma_vth_intra_v when scaling is off).
  /// Inline: called per gate per sample in the Monte-Carlo hot loop.
  double sigma_vth_intra_for(double device_width_um) const {
    if (!pelgrom_vth_scaling || device_width_um <= 0.0) {
      return sigma_vth_intra_v;
    }
    return sigma_vth_intra_v *
           std::sqrt(pelgrom_ref_width_um / device_width_um);
  }

  /// Total channel-length sigma [nm] (inter and intra in quadrature).
  double sigma_l_total_nm() const {
    return std::sqrt(sigma_l_inter_nm * sigma_l_inter_nm +
                     sigma_l_intra_nm * sigma_l_intra_nm);
  }
  /// Total threshold-voltage sigma [V].
  double sigma_vth_total_v() const {
    return std::sqrt(sigma_vth_inter_v * sigma_vth_inter_v +
                     sigma_vth_intra_v * sigma_vth_intra_v);
  }

  /// Throws statleak::Error on negative sigmas.
  void validate() const;

  /// A model with all sigmas zero (deterministic limit; useful in tests).
  static VariationModel none();

  /// Default DAC'04-era model: 3*sigma(L) = 15 % of a 60 nm Leff split
  /// 50/50 inter/intra in variance; Vth variation intra-dominant (RDF).
  static VariationModel typical_100nm();

  /// Scales every sigma by the given factor (sensitivity studies).
  VariationModel scaled(double factor) const;
};

/// One sampled die-level (global) variation draw.
struct GlobalSample {
  double dl_nm = 0.0;
  double dvth_v = 0.0;
};

/// One sampled per-gate total variation (global + that gate's local draw).
struct ParamSample {
  double dl_nm = 0.0;
  double dvth_v = 0.0;
};

/// Draws the shared inter-die components for one simulated die.
/// Inline (with the draw helpers below): these sit inside the Monte-Carlo
/// hot loop, and both the scalar and batched engines must issue the exact
/// same normal() call sequence to stay bit-identical — sharing one inlined
/// definition guarantees that by construction.
inline GlobalSample sample_global(const VariationModel& model, Rng& rng) {
  return GlobalSample{rng.normal(0.0, model.sigma_l_inter_nm),
                      rng.normal(0.0, model.sigma_vth_inter_v)};
}

/// Draws one gate's total variation given the die's global components.
/// `device_width_um` feeds the Pelgrom scaling; pass a non-positive value
/// (default) to use the nominal intra-die Vth sigma.
inline ParamSample sample_gate(const VariationModel& model,
                               const GlobalSample& g, Rng& rng,
                               double device_width_um = -1.0) {
  return ParamSample{
      g.dl_nm + rng.normal(0.0, model.sigma_l_intra_nm),
      g.dvth_v +
          rng.normal(0.0, model.sigma_vth_intra_for(device_width_um))};
}

}  // namespace statleak
