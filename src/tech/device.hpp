/// \file device.hpp
/// \brief Closed-form transistor-level models: sub-threshold leakage and
///        alpha-power-law drive, with their variation sensitivities.
///
/// Leakage (off-state sub-threshold current of a device of width W um):
///
///   Ioff(W, vth, dL, dVth)
///     = i0 * W * 10^(-(Vth + rolloff*dL + dVth) / S) * exp(q * dL^2)
///
/// so ln Ioff is linear (plus an optional quadratic term q, default 0) in the
/// Gaussian parameters — the lognormal-leakage foundation of the paper:
///
///   Ioff = Inom * exp(-cL*dL - cV*dVth + q*dL^2),
///   cL = ln(10) * rolloff / S [1/nm],   cV = ln(10) / S [1/V].
///
/// Drive (alpha-power law, Sakurai–Newton):
///
///   Id(W, vth, dL, dVth) = k_drive * W * (Vdd - Vth_eff)^alpha * Lnom/L
///
/// giving a gate delay d = k_delay * C * Vdd / Id whose first-order relative
/// sensitivities are
///
///   sL = 1/Leff + alpha*rolloff/(Vdd - Vth)  [1/nm]   (slower when L grows)
///   sV = alpha / (Vdd - Vth)                 [1/V].
///
/// Note the built-in anti-correlation: +dL makes a die slower AND less leaky.

#pragma once

#include "tech/process.hpp"

namespace statleak {

/// Variation-sensitivity coefficients of a Vth class under a node. Computed
/// once per (node, Vth) and reused by the SSTA and leakage engines.
struct DeviceSensitivities {
  double leak_cl_per_nm = 0.0;  ///< cL: -d ln(Ioff)/d(dL) [1/nm]
  double leak_cv_per_v = 0.0;   ///< cV: -d ln(Ioff)/d(dVth) [1/V]
  double leak_q_per_nm2 = 0.0;  ///< q: optional quadratic exponent [1/nm^2]
  double delay_sl_per_nm = 0.0; ///< sL: +d ln(delay)/d(dL) [1/nm]
  double delay_sv_per_v = 0.0;  ///< sV: +d ln(delay)/d(dVth) [1/V]
};

/// Sensitivities for devices of the given threshold class.
DeviceSensitivities device_sensitivities(const ProcessNode& node, Vth vth);

/// Off-state sub-threshold current [nA] of a device of width `width_um`.
/// `dl_nm`/`dvth_v` are that device's total parameter deviations.
double subthreshold_current_na(const ProcessNode& node, Vth vth,
                               double width_um, double dl_nm = 0.0,
                               double dvth_v = 0.0);

/// On-state drive current [uA] of a device of width `width_um` under the
/// alpha-power law, including Vth roll-off and channel-length modulation of
/// the deviations.
double drive_current_ua(const ProcessNode& node, Vth vth, double width_um,
                        double dl_nm = 0.0, double dvth_v = 0.0);

/// Gate (input) capacitance [fF] of a device of width `width_um`.
double gate_cap_ff(const ProcessNode& node, double width_um);

/// Drain junction capacitance [fF] of a device of width `width_um`.
double junction_cap_ff(const ProcessNode& node, double width_um);

}  // namespace statleak
