#include "tech/variation.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace statleak {

void VariationModel::validate() const {
  STATLEAK_CHECK(sigma_l_inter_nm >= 0.0 && sigma_l_intra_nm >= 0.0 &&
                     sigma_vth_inter_v >= 0.0 && sigma_vth_intra_v >= 0.0,
                 "variation sigmas must be non-negative");
}

VariationModel VariationModel::none() {
  return VariationModel{0.0, 0.0, 0.0, 0.0};
}

VariationModel VariationModel::typical_100nm() { return VariationModel{}; }

VariationModel VariationModel::scaled(double factor) const {
  STATLEAK_CHECK(factor >= 0.0, "scale factor must be non-negative");
  VariationModel out = *this;  // preserves the Pelgrom configuration
  out.sigma_l_inter_nm *= factor;
  out.sigma_l_intra_nm *= factor;
  out.sigma_vth_inter_v *= factor;
  out.sigma_vth_intra_v *= factor;
  return out;
}

GlobalSample sample_global(const VariationModel& model, Rng& rng) {
  return GlobalSample{rng.normal(0.0, model.sigma_l_inter_nm),
                      rng.normal(0.0, model.sigma_vth_inter_v)};
}

double VariationModel::sigma_vth_intra_for(double device_width_um) const {
  if (!pelgrom_vth_scaling || device_width_um <= 0.0) {
    return sigma_vth_intra_v;
  }
  return sigma_vth_intra_v *
         std::sqrt(pelgrom_ref_width_um / device_width_um);
}

ParamSample sample_gate(const VariationModel& model, const GlobalSample& g,
                        Rng& rng, double device_width_um) {
  return ParamSample{
      g.dl_nm + rng.normal(0.0, model.sigma_l_intra_nm),
      g.dvth_v +
          rng.normal(0.0, model.sigma_vth_intra_for(device_width_um))};
}

}  // namespace statleak
