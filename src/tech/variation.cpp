#include "tech/variation.hpp"

#include <cmath>

#include "util/error.hpp"

namespace statleak {

void VariationModel::validate() const {
  STATLEAK_CHECK(sigma_l_inter_nm >= 0.0 && sigma_l_intra_nm >= 0.0 &&
                     sigma_vth_inter_v >= 0.0 && sigma_vth_intra_v >= 0.0,
                 "variation sigmas must be non-negative");
}

VariationModel VariationModel::none() {
  return VariationModel{0.0, 0.0, 0.0, 0.0};
}

VariationModel VariationModel::typical_100nm() { return VariationModel{}; }

VariationModel VariationModel::scaled(double factor) const {
  STATLEAK_CHECK(factor >= 0.0, "scale factor must be non-negative");
  VariationModel out = *this;  // preserves the Pelgrom configuration
  out.sigma_l_inter_nm *= factor;
  out.sigma_l_intra_nm *= factor;
  out.sigma_vth_inter_v *= factor;
  out.sigma_vth_intra_v *= factor;
  return out;
}

}  // namespace statleak
