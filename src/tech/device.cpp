#include "tech/device.hpp"

#include <cmath>

#include "util/error.hpp"

namespace statleak {

namespace {
constexpr double kLn10 = 2.302585092994046;
}

DeviceSensitivities device_sensitivities(const ProcessNode& node, Vth vth) {
  const double vth_v = node.vth_of(vth);
  const double overdrive = node.vdd - vth_v;
  STATLEAK_CHECK(overdrive > 0.0, "vdd must exceed vth");
  DeviceSensitivities s;
  s.leak_cl_per_nm = kLn10 * node.vth_rolloff_v_per_nm /
                     node.subthreshold_slope;
  s.leak_cv_per_v = kLn10 / node.subthreshold_slope;
  s.leak_q_per_nm2 = node.leak_quadratic_per_nm2;
  s.delay_sl_per_nm =
      1.0 / node.leff_nm + node.alpha * node.vth_rolloff_v_per_nm / overdrive;
  s.delay_sv_per_v = node.alpha / overdrive;
  return s;
}

double subthreshold_current_na(const ProcessNode& node, Vth vth,
                               double width_um, double dl_nm, double dvth_v) {
  STATLEAK_CHECK(width_um >= 0.0, "device width must be non-negative");
  const double vth_eff =
      node.vth_of(vth) + node.vth_rolloff_v_per_nm * dl_nm + dvth_v;
  const double exponent = -vth_eff / node.subthreshold_slope;
  const double quad = node.leak_quadratic_per_nm2 * dl_nm * dl_nm;
  return node.i0_na_per_um * width_um *
         std::pow(10.0, exponent) * std::exp(quad);
}

double drive_current_ua(const ProcessNode& node, Vth vth, double width_um,
                        double dl_nm, double dvth_v) {
  STATLEAK_CHECK(width_um >= 0.0, "device width must be non-negative");
  const double vth_eff =
      node.vth_of(vth) + node.vth_rolloff_v_per_nm * dl_nm + dvth_v;
  const double overdrive = node.vdd - vth_eff;
  STATLEAK_CHECK(overdrive > 0.0,
                 "effective vth reached vdd — variation sample non-physical");
  const double length_factor = node.leff_nm / (node.leff_nm + dl_nm);
  return node.k_drive_ua_per_um * width_um *
         std::pow(overdrive, node.alpha) * length_factor;
}

double gate_cap_ff(const ProcessNode& node, double width_um) {
  return node.cg_ff_per_um * width_um;
}

double junction_cap_ff(const ProcessNode& node, double width_um) {
  return node.cj_ff_per_um * width_um;
}

}  // namespace statleak
