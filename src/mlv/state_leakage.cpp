#include "mlv/state_leakage.hpp"

#include <bit>

#include "cells/topology.hpp"
#include "tech/device.hpp"
#include "util/error.hpp"

namespace statleak {

namespace {

/// Leakage of one NAND-like stage of fanin m with `low_count` low inputs
/// (NOR-like is the dual with `high_count`), for a size-1 cell scaled by
/// `scale`. Mirrors CellLibrary::precompute's per-state arithmetic.
double stage_state_leak_na(const ProcessNode& node, Vth vth, int m,
                           bool nand_like, double scale, int off_count) {
  const double wn = node.wn_unit_um;
  const double wp = node.pn_ratio * wn;
  const double w_series = m * scale * (nand_like ? wn : wp);
  const double w_parallel = scale * (nand_like ? wp : wn);
  if (off_count == 0) {
    // Series network conducting: the parallel network is fully off.
    return m * subthreshold_current_na(node, vth, w_parallel);
  }
  return stack_factor(off_count) *
         subthreshold_current_na(node, vth, w_series);
}

int popcount_low(std::uint32_t bits, int m) {
  const std::uint32_t mask = (m >= 32) ? ~0u : ((1u << m) - 1u);
  return m - std::popcount(bits & mask);
}

}  // namespace

bool state_leakage_is_exact(CellKind kind) {
  switch (kind) {
    case CellKind::kInv:
    case CellKind::kBuf:
    case CellKind::kNand2:
    case CellKind::kNand3:
    case CellKind::kNand4:
    case CellKind::kNor2:
    case CellKind::kNor3:
    case CellKind::kNor4:
    case CellKind::kAnd2:
    case CellKind::kAnd3:
    case CellKind::kOr2:
    case CellKind::kOr3:
      return true;
    default:
      return false;
  }
}

double state_leakage_na(const CellLibrary& lib, CellKind kind, Vth vth,
                        double size, std::uint32_t input_bits) {
  STATLEAK_CHECK(size > 0.0, "cell size must be positive");
  const ProcessNode& node = lib.node();
  const int fanin = cell_info(kind).fanin;
  STATLEAK_CHECK(fanin == 0 || input_bits < (1u << fanin),
                 "input state uses more bits than the cell has pins");

  if (!state_leakage_is_exact(kind)) {
    return lib.leakage_na(kind, vth, size);  // state-average fallback
  }

  const auto nand_state = [&](int m, std::uint32_t bits, double scale) {
    return stage_state_leak_na(node, vth, m, /*nand_like=*/true, scale,
                               popcount_low(bits, m));
  };
  const auto nor_state = [&](int m, std::uint32_t bits, double scale) {
    // NOR-like: the series pMOS stack is off per *high* input.
    const int high = m - popcount_low(bits, m);
    return stage_state_leak_na(node, vth, m, /*nand_like=*/false, scale,
                               high);
  };

  double leak = 0.0;
  switch (kind) {
    case CellKind::kInv:
      leak = nand_state(1, input_bits, 1.0);
      break;
    case CellKind::kBuf: {
      // First inverter (half size) sees the input; second sees its
      // complement.
      const std::uint32_t mid = evaluate(CellKind::kInv, input_bits) ? 1 : 0;
      leak = nand_state(1, input_bits, 0.5) + nand_state(1, mid, 1.0);
      break;
    }
    case CellKind::kNand2:
      leak = nand_state(2, input_bits, 1.0);
      break;
    case CellKind::kNand3:
      leak = nand_state(3, input_bits, 1.0);
      break;
    case CellKind::kNand4:
      leak = nand_state(4, input_bits, 1.0);
      break;
    case CellKind::kNor2:
      leak = nor_state(2, input_bits, 1.0);
      break;
    case CellKind::kNor3:
      leak = nor_state(3, input_bits, 1.0);
      break;
    case CellKind::kNor4:
      leak = nor_state(4, input_bits, 1.0);
      break;
    case CellKind::kAnd2:
    case CellKind::kAnd3: {
      const int m = kind == CellKind::kAnd2 ? 2 : 3;
      const CellKind nand_kind =
          kind == CellKind::kAnd2 ? CellKind::kNand2 : CellKind::kNand3;
      const std::uint32_t mid = evaluate(nand_kind, input_bits) ? 1 : 0;
      leak = nand_state(m, input_bits, 1.0) + nand_state(1, mid, 1.0);
      break;
    }
    case CellKind::kOr2:
    case CellKind::kOr3: {
      const int m = kind == CellKind::kOr2 ? 2 : 3;
      const CellKind nor_kind =
          kind == CellKind::kOr2 ? CellKind::kNor2 : CellKind::kNor3;
      const std::uint32_t mid = evaluate(nor_kind, input_bits) ? 1 : 0;
      leak = nor_state(m, input_bits, 1.0) + nand_state(1, mid, 1.0);
      break;
    }
    default:
      STATLEAK_CHECK(false, "unreachable: exactness checked above");
  }
  return leak * size;
}

}  // namespace statleak
