/// \file state_leakage.hpp
/// \brief Input-state-dependent cell leakage.
///
/// The library's leakage_na() averages over input states — right for a
/// circuit whose idle state is unknown. But standby leakage is a function
/// of the actual input vector: an m-input NAND with all inputs low leaks
/// through a full off-stack (suppressed ~10x per extra series device),
/// while with all inputs high it leaks through m parallel pMOS devices.
/// This header evaluates that state dependence:
///
///  * exactly for the single-stage kinds (INV, NAND2-4, NOR2-4) and the
///    two-stage compositions whose internal nodes are derivable from the
///    cell inputs (BUF, AND2/3, OR2/3);
///  * as the state-average for the remaining complex kinds (XOR/XNOR,
///    AOI/OAI, MUX2), whose internal decomposition in this library is an
///    approximation to begin with.

#pragma once

#include <cstdint>

#include "cells/library.hpp"

namespace statleak {

/// Leakage [nA] of one cell in the given input state (bit i of `input_bits`
/// = logic value of pin i). Falls back to the state-average for kinds whose
/// internal state is not derivable. `input_bits` must only use the cell's
/// fanin count worth of bits.
double state_leakage_na(const CellLibrary& lib, CellKind kind, Vth vth,
                        double size, std::uint32_t input_bits);

/// True if state_leakage_na resolves the exact state for this kind (false
/// = state-average fallback).
bool state_leakage_is_exact(CellKind kind);

}  // namespace statleak
