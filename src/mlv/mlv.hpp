/// \file mlv.hpp
/// \brief Minimum-leakage-vector (MLV) search.
///
/// Standby leakage depends on the primary-input vector parked on the
/// circuit during sleep (state-dependent stacking — state_leakage.hpp). The
/// classic companion problem to dual-Vth optimization: find the input
/// vector minimizing total standby leakage. Exact search is exponential;
/// statleak ships the standard heuristic — random sampling followed by
/// greedy bit-flip descent — which typically lands within a few percent of
/// exhaustive on small circuits (tested) and recovers the literature's
/// ~10-20 % mean-to-min spread.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "cells/library.hpp"
#include "netlist/circuit.hpp"
#include "util/exec.hpp"

namespace statleak {

/// Total nominal standby leakage [nA] of the circuit under one input
/// vector (state-dependent where derivable; see state_leakage.hpp).
double vector_leakage_na(const Circuit& circuit, const CellLibrary& lib,
                         std::span<const char> inputs);

/// Execution knobs come from ExecConfig (`seed` default 1, the historical
/// MLV seed; the search itself is serial, so `num_threads` is unused).
struct MlvConfig : ExecConfig {
  MlvConfig() { seed = 1; }

  int random_trials = 128;  ///< initial random probes
  int greedy_passes = 4;    ///< bit-flip descent sweeps over all inputs
};

struct MlvResult {
  std::vector<char> best_vector;
  double best_leakage_na = 0.0;
  double mean_leakage_na = 0.0;   ///< mean over the random probes
  double worst_leakage_na = 0.0;  ///< worst random probe seen
  int evaluations = 0;

  /// Relative saving of the best vector vs the random mean.
  double saving_vs_mean() const {
    return mean_leakage_na > 0.0
               ? (mean_leakage_na - best_leakage_na) / mean_leakage_na
               : 0.0;
  }
};

MlvResult find_min_leakage_vector(const Circuit& circuit,
                                  const CellLibrary& lib,
                                  const MlvConfig& config = {});

}  // namespace statleak
