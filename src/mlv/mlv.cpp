#include "mlv/mlv.hpp"

#include "mlv/state_leakage.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace statleak {

double vector_leakage_na(const Circuit& circuit, const CellLibrary& lib,
                         std::span<const char> inputs) {
  const std::vector<char> values = simulate(circuit, inputs);
  double total = 0.0;
  for (GateId id = 0; id < circuit.num_gates(); ++id) {
    const Gate& g = circuit.gate(id);
    if (g.kind == CellKind::kInput) continue;
    std::uint32_t bits = 0;
    for (std::size_t pin = 0; pin < g.fanins.size(); ++pin) {
      if (values[g.fanins[pin]]) bits |= 1u << pin;
    }
    total += state_leakage_na(lib, g.kind, g.vth, g.size, bits);
  }
  return total;
}

MlvResult find_min_leakage_vector(const Circuit& circuit,
                                  const CellLibrary& lib,
                                  const MlvConfig& config) {
  STATLEAK_CHECK(config.random_trials >= 1, "need at least one trial");
  STATLEAK_CHECK(config.greedy_passes >= 0, "passes must be non-negative");
  Rng rng(config.seed);
  const std::size_t n_inputs = circuit.inputs().size();

  MlvResult result;
  RunningStats probe_stats;
  std::vector<char> vec(n_inputs);
  result.best_leakage_na = std::numeric_limits<double>::infinity();

  // Phase 1: random probes.
  for (int t = 0; t < config.random_trials; ++t) {
    for (auto& bit : vec) bit = rng.uniform_index(2) ? 1 : 0;
    const double leak = vector_leakage_na(circuit, lib, vec);
    ++result.evaluations;
    probe_stats.add(leak);
    if (leak < result.best_leakage_na) {
      result.best_leakage_na = leak;
      result.best_vector = vec;
    }
  }
  result.mean_leakage_na = probe_stats.mean();
  result.worst_leakage_na = probe_stats.max();

  // Phase 2: greedy bit-flip descent from the best probe.
  vec = result.best_vector;
  for (int pass = 0; pass < config.greedy_passes; ++pass) {
    bool improved = false;
    for (std::size_t i = 0; i < n_inputs; ++i) {
      vec[i] = vec[i] ? 0 : 1;
      const double leak = vector_leakage_na(circuit, lib, vec);
      ++result.evaluations;
      if (leak < result.best_leakage_na) {
        result.best_leakage_na = leak;
        result.best_vector = vec;
        improved = true;
      } else {
        vec[i] = vec[i] ? 0 : 1;  // revert
      }
    }
    if (!improved) break;
  }
  return result;
}

}  // namespace statleak
