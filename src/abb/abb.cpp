#include "abb/abb.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <limits>
#include <utility>

#include "leakage/batch_leakage.hpp"
#include "leakage/leakage.hpp"
#include "mc/batch.hpp"
#include "netlist/flat_circuit.hpp"
#include "sta/batch_delay.hpp"
#include "sta/sta.hpp"
#include "util/error.hpp"
#include "util/health.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace statleak {

void BodyBiasConfig::validate() const {
  STATLEAK_CHECK(k_body_v_per_v > 0.0, "body-effect strength must be > 0");
  STATLEAK_CHECK(vbb_step_v > 0.0, "bias step must be positive");
  STATLEAK_CHECK(vbb_min_v <= 0.0 && vbb_max_v >= 0.0,
                 "bias ladder must include zero bias");
}

std::vector<double> BodyBiasConfig::ladder() const {
  validate();
  std::vector<double> steps;
  for (double v = vbb_min_v; v <= vbb_max_v + 1e-12; v += vbb_step_v) {
    // Snap near-zero entries to exactly zero so the unbiased setting is in
    // the ladder.
    steps.push_back(std::abs(v) < 1e-12 ? 0.0 : v);
  }
  return steps;
}

double AbbResult::reverse_fraction() const {
  if (bias_v.empty()) return 0.0;
  std::size_t n = 0;
  for (double v : bias_v) {
    if (v < -1e-12) ++n;
  }
  return static_cast<double>(n) / static_cast<double>(bias_v.size());
}

double AbbResult::forward_fraction() const {
  if (bias_v.empty()) return 0.0;
  std::size_t n = 0;
  for (double v : bias_v) {
    if (v > 1e-12) ++n;
  }
  return static_cast<double>(n) / static_cast<double>(bias_v.size());
}

AbbResult run_abb_experiment(const Circuit& circuit, const CellLibrary& lib,
                             const VariationModel& var,
                             const BodyBiasConfig& abb, const McConfig& mc,
                             double t_max_ps, obs::Registry* obs) {
  abb.validate();
  var.validate();
  STATLEAK_CHECK(mc.num_samples > 0, "need at least one sample");
  STATLEAK_CHECK(t_max_ps > 0.0, "delay target must be positive");
  obs::ScopedTimer timer(obs, "abb.sweep");

  StaEngine sta(circuit, lib);
  LeakageAnalyzer leakage(circuit, lib, var);
  const std::vector<double> ladder = abb.ladder();

  const std::size_t n = circuit.num_gates();
  std::vector<double> widths(n, -1.0);
  for (std::size_t id = 0; id < n; ++id) {
    const Gate& g = circuit.gate(static_cast<GateId>(id));
    if (g.kind != CellKind::kInput) widths[id] = lib.area_um(g.kind, g.size);
  }

  const auto num_samples = static_cast<std::size_t>(mc.num_samples);
  AbbResult result;
  result.dies_requested = num_samples;
  result.baseline.delay_ps.assign(num_samples, 0.0);
  result.baseline.leakage_na.assign(num_samples, 0.0);
  result.compensated.delay_ps.assign(num_samples, 0.0);
  result.compensated.leakage_na.assign(num_samples, 0.0);
  result.bias_v.assign(num_samples, 0.0);

  const int workers = resolve_num_threads(mc.num_threads);

  // Fault-tolerance plumbing (deadline at block boundaries, per-die health
  // checks, serial compaction of partial populations) mirrors
  // run_monte_carlo; checkpointing stays a flat-MC feature.
  const Deadline deadline(mc.deadline_ms);
  std::atomic<bool> stop{false};
  const bool fail_fast = mc.health_policy == HealthPolicy::kFail;
  using SlotRun = std::pair<std::size_t, std::size_t>;
  std::vector<std::vector<SlotRun>> computed_runs(
      static_cast<std::size_t>(workers));
  const auto log_run = [&](int worker, std::size_t run_begin,
                           std::size_t run_end) {
    if (run_end > run_begin) {
      computed_runs[static_cast<std::size_t>(worker)].emplace_back(run_begin,
                                                                   run_end);
    }
  };
  // A die is healthy only when all four of its paired values are finite.
  const auto die_health = [&result](std::size_t s) -> std::uint8_t {
    return static_cast<std::uint8_t>(
        classify_health(result.baseline.delay_ps[s],
                        result.baseline.leakage_na[s]) |
        classify_health(result.compensated.delay_ps[s],
                        result.compensated.leakage_na[s]));
  };

  // Die i reuses the Monte-Carlo engine's counter-derived stream i, so the
  // baseline population is bit-identical to run_monte_carlo with the same
  // config (the experiment is paired) — for any thread count of either.
  if (mc.use_batched) {
    const auto t0 = std::chrono::steady_clock::now();
    const FlatCircuit flat = FlatCircuit::build(circuit);
    const BatchDelayKernel delay_kernel(flat, lib, sta.loads());
    const BatchLeakageKernel leak_kernel(flat, lib);
    const auto t1 = std::chrono::steady_clock::now();
    if (obs != nullptr) {
      obs->add("flat.build_ns",
               static_cast<double>(
                   std::chrono::duration_cast<std::chrono::nanoseconds>(
                       t1 - t0)
                       .count()));
    }

    const std::size_t block = resolve_batch_size(mc.batch_size, n);
    std::vector<BatchScratch> scratch_pool(
        static_cast<std::size_t>(workers));

    parallel_for(
        mc.num_threads, num_samples,
        [&](std::size_t begin, std::size_t end, int worker) {
          obs::LocalCounter evals(obs, "abb.sta_evals");
          obs::LocalCounter batches(obs, "abb.batches");
          BatchScratch& sc = scratch_pool[static_cast<std::size_t>(worker)];
          sc.resize(n, block);
          // Per-lane ladder-selection state, reused across blocks. The
          // comparison sequence per lane is identical to the scalar sweep.
          std::vector<double> best_bias(block), best_leak(block),
              best_delay(block), fastest_delay(block), fastest_bias(block),
              fastest_leak(block);
          std::vector<char> any_feasible(block);
          std::size_t covered = begin;
          for (std::size_t s0 = begin; s0 < end; s0 += block) {
            if (stop.load(std::memory_order_relaxed)) break;
            if (deadline.expired()) {
              stop.store(true, std::memory_order_relaxed);
              break;
            }
            const std::size_t lanes = std::min(block, end - s0);
            evals.add(static_cast<double>(lanes) *
                      (1.0 + static_cast<double>(ladder.size())));
            batches.add();
            for (std::size_t lane = 0; lane < lanes; ++lane) {
              Rng rng = Rng::stream(mc.seed, s0 + lane);
              const GlobalSample die = sample_global(var, rng);
              for (std::size_t id = 0; id < n; ++id) {
                const ParamSample ps = sample_gate(var, die, rng, widths[id]);
                sc.dl[id * block + lane] = ps.dl_nm;
                sc.dv[id * block + lane] = ps.dvth_v;
              }
            }
            delay_kernel.critical_delay_block(
                sc.dl.data(), sc.dv.data(), block, lanes, mc.exact_delay,
                nullptr, sc.arrival.data(), sc.delay_out.data());
            leak_kernel.total_block(sc.dl.data(), sc.dv.data(), block, lanes,
                                    nullptr, sc.leak_out.data());
            for (std::size_t lane = 0; lane < lanes; ++lane) {
              result.baseline.delay_ps[s0 + lane] = sc.delay_out[lane];
              result.baseline.leakage_na[s0 + lane] = sc.leak_out[lane];
              best_bias[lane] = ladder.front();
              best_leak[lane] = std::numeric_limits<double>::infinity();
              best_delay[lane] = std::numeric_limits<double>::infinity();
              any_feasible[lane] = 0;
              fastest_delay[lane] = std::numeric_limits<double>::infinity();
              fastest_bias[lane] = 0.0;
              fastest_leak[lane] = 0.0;
            }
            // Sweep the ladder: min leakage subject to delay <= T; if
            // nothing meets T, the fastest (most forward) setting. The
            // whole block shares each ladder step, applied as a uniform
            // dVth shift inside the kernels — bitwise the same as the
            // scalar path's `biased[id].dvth_v += dvth` precompute.
            for (double vbb : ladder) {
              const double dvth = -abb.k_body_v_per_v * vbb;
              delay_kernel.critical_delay_block(
                  sc.dl.data(), sc.dv.data(), block, lanes, mc.exact_delay,
                  &dvth, sc.arrival.data(), sc.delay_out.data());
              leak_kernel.total_block(sc.dl.data(), sc.dv.data(), block,
                                      lanes, &dvth, sc.leak_out.data());
              for (std::size_t lane = 0; lane < lanes; ++lane) {
                const double delay = sc.delay_out[lane];
                const double leak = sc.leak_out[lane];
                if (delay < fastest_delay[lane]) {
                  fastest_delay[lane] = delay;
                  fastest_bias[lane] = vbb;
                  fastest_leak[lane] = leak;
                }
                if (delay <= t_max_ps && leak < best_leak[lane]) {
                  any_feasible[lane] = 1;
                  best_leak[lane] = leak;
                  best_bias[lane] = vbb;
                  best_delay[lane] = delay;
                }
              }
            }
            for (std::size_t lane = 0; lane < lanes; ++lane) {
              if (!any_feasible[lane]) {
                best_bias[lane] = fastest_bias[lane];
                best_delay[lane] = fastest_delay[lane];
                best_leak[lane] = fastest_leak[lane];
              }
              result.compensated.delay_ps[s0 + lane] = best_delay[lane];
              result.compensated.leakage_na[s0 + lane] = best_leak[lane];
              result.bias_v[s0 + lane] = best_bias[lane];
              if (fail_fast) {
                const std::uint8_t cause = die_health(s0 + lane);
                if (cause != 0) {
                  stop.store(true, std::memory_order_relaxed);
                  throw_sample_health(s0 + lane, cause);
                }
              }
            }
            covered = s0 + lanes;
          }
          log_run(worker, begin, covered);
        });
  } else {
    std::vector<std::vector<ParamSample>> sample_pool(
        static_cast<std::size_t>(workers));
    std::vector<std::vector<ParamSample>> biased_pool(
        static_cast<std::size_t>(workers));
    std::vector<std::vector<double>> scratch_pool(
        static_cast<std::size_t>(workers));
    parallel_for(
        mc.num_threads, num_samples,
        [&](std::size_t begin, std::size_t end, int worker) {
          obs::LocalCounter evals(obs, "abb.sta_evals");
          std::vector<ParamSample>& samples =
              sample_pool[static_cast<std::size_t>(worker)];
          samples.resize(n);
          std::vector<ParamSample>& biased =
              biased_pool[static_cast<std::size_t>(worker)];
          biased.resize(n);
          std::vector<double>& scratch =
              scratch_pool[static_cast<std::size_t>(worker)];
          std::size_t covered = begin;
          for (std::size_t s = begin; s < end; ++s) {
            if (stop.load(std::memory_order_relaxed)) break;
            if (deadline.expired()) {
              stop.store(true, std::memory_order_relaxed);
              break;
            }
            evals.add(1.0 + static_cast<double>(ladder.size()));
            Rng rng = Rng::stream(mc.seed, s);
            const GlobalSample die = sample_global(var, rng);
            for (std::size_t id = 0; id < n; ++id) {
              samples[id] = sample_gate(var, die, rng, widths[id]);
            }
            result.baseline.delay_ps[s] = sta.critical_delay_sample_ps(
                samples, mc.exact_delay, scratch);
            result.baseline.leakage_na[s] = leakage.total_sample_na(samples);

            // Sweep the ladder: min leakage subject to delay <= T; if
            // nothing meets T, the fastest (most forward) setting.
            double best_bias = ladder.front();
            double best_leak = std::numeric_limits<double>::infinity();
            double best_delay = std::numeric_limits<double>::infinity();
            bool any_feasible = false;
            double fastest_delay = std::numeric_limits<double>::infinity();
            double fastest_bias = 0.0;
            double fastest_leak = 0.0;
            for (double vbb : ladder) {
              const double dvth = -abb.k_body_v_per_v * vbb;
              for (std::size_t id = 0; id < n; ++id) {
                biased[id] = samples[id];
                biased[id].dvth_v += dvth;
              }
              const double delay = sta.critical_delay_sample_ps(
                  biased, mc.exact_delay, scratch);
              const double leak = leakage.total_sample_na(biased);
              if (delay < fastest_delay) {
                fastest_delay = delay;
                fastest_bias = vbb;
                fastest_leak = leak;
              }
              if (delay <= t_max_ps && leak < best_leak) {
                any_feasible = true;
                best_leak = leak;
                best_bias = vbb;
                best_delay = delay;
              }
            }
            if (!any_feasible) {
              best_bias = fastest_bias;
              best_delay = fastest_delay;
              best_leak = fastest_leak;
            }
            result.compensated.delay_ps[s] = best_delay;
            result.compensated.leakage_na[s] = best_leak;
            result.bias_v[s] = best_bias;
            if (fail_fast) {
              const std::uint8_t cause = die_health(s);
              if (cause != 0) {
                stop.store(true, std::memory_order_relaxed);
                throw_sample_health(s, cause);
              }
            }
            covered = s + 1;
          }
          log_run(worker, begin, covered);
        });
  }

  // Serial finalize: paired compaction — a die survives into baseline,
  // compensated and bias arrays together or not at all.
  std::vector<std::uint8_t> done(num_samples, 0);
  for (const auto& runs : computed_runs) {
    for (const SlotRun& r : runs) {
      std::fill(done.begin() + static_cast<std::ptrdiff_t>(r.first),
                done.begin() + static_cast<std::ptrdiff_t>(r.second), 1);
    }
  }
  std::size_t done_count = 0;
  for (std::uint8_t d : done) done_count += d;
  result.dies_done = done_count;
  result.completed = done_count == num_samples;
  result.baseline.samples_requested = num_samples;
  result.compensated.samples_requested = num_samples;
  std::vector<QuarantinedSample> quarantined;
  for (std::size_t s = 0; s < num_samples; ++s) {
    if (done[s] == 0) continue;
    const std::uint8_t cause = die_health(s);
    if (cause == 0) continue;
    if (fail_fast) throw_sample_health(s, cause);
    quarantined.push_back(
        {static_cast<std::uint64_t>(s), static_cast<HealthCause>(cause)});
  }
  if (!result.completed || !quarantined.empty()) {
    std::size_t q = 0;
    std::size_t out = 0;
    for (std::size_t s = 0; s < num_samples; ++s) {
      if (done[s] == 0) continue;
      if (q < quarantined.size() && quarantined[q].slot == s) {
        ++q;
        continue;
      }
      result.baseline.delay_ps[out] = result.baseline.delay_ps[s];
      result.baseline.leakage_na[out] = result.baseline.leakage_na[s];
      result.compensated.delay_ps[out] = result.compensated.delay_ps[s];
      result.compensated.leakage_na[out] = result.compensated.leakage_na[s];
      result.bias_v[out] = result.bias_v[s];
      ++out;
    }
    result.baseline.delay_ps.resize(out);
    result.baseline.leakage_na.resize(out);
    result.compensated.delay_ps.resize(out);
    result.compensated.leakage_na.resize(out);
    result.bias_v.resize(out);
  }
  result.baseline.completed = result.completed;
  result.compensated.completed = result.completed;
  result.baseline.samples_done = done_count;
  result.compensated.samples_done = done_count;
  result.baseline.quarantined = quarantined;
  result.compensated.quarantined = std::move(quarantined);

  if (obs != nullptr) {
    obs->add("abb.dies", static_cast<double>(result.bias_v.size()));
    if (!result.compensated.quarantined.empty()) {
      obs->add("abb.quarantined",
               static_cast<double>(result.compensated.quarantined.size()));
    }
    if (!result.completed) {
      obs->add("abb.dies_done", static_cast<double>(result.dies_done));
      obs->mark_incomplete("deadline");
    }
  }
  return result;
}

}  // namespace statleak
