#include "abb/abb.hpp"

#include <cmath>
#include <limits>

#include "leakage/leakage.hpp"
#include "sta/sta.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace statleak {

void BodyBiasConfig::validate() const {
  STATLEAK_CHECK(k_body_v_per_v > 0.0, "body-effect strength must be > 0");
  STATLEAK_CHECK(vbb_step_v > 0.0, "bias step must be positive");
  STATLEAK_CHECK(vbb_min_v <= 0.0 && vbb_max_v >= 0.0,
                 "bias ladder must include zero bias");
}

std::vector<double> BodyBiasConfig::ladder() const {
  validate();
  std::vector<double> steps;
  for (double v = vbb_min_v; v <= vbb_max_v + 1e-12; v += vbb_step_v) {
    // Snap near-zero entries to exactly zero so the unbiased setting is in
    // the ladder.
    steps.push_back(std::abs(v) < 1e-12 ? 0.0 : v);
  }
  return steps;
}

double AbbResult::reverse_fraction() const {
  if (bias_v.empty()) return 0.0;
  std::size_t n = 0;
  for (double v : bias_v) {
    if (v < -1e-12) ++n;
  }
  return static_cast<double>(n) / static_cast<double>(bias_v.size());
}

double AbbResult::forward_fraction() const {
  if (bias_v.empty()) return 0.0;
  std::size_t n = 0;
  for (double v : bias_v) {
    if (v > 1e-12) ++n;
  }
  return static_cast<double>(n) / static_cast<double>(bias_v.size());
}

AbbResult run_abb_experiment(const Circuit& circuit, const CellLibrary& lib,
                             const VariationModel& var,
                             const BodyBiasConfig& abb, const McConfig& mc,
                             double t_max_ps, obs::Registry* obs) {
  abb.validate();
  var.validate();
  STATLEAK_CHECK(mc.num_samples > 0, "need at least one sample");
  STATLEAK_CHECK(t_max_ps > 0.0, "delay target must be positive");
  obs::ScopedTimer timer(obs, "abb.sweep");

  StaEngine sta(circuit, lib);
  LeakageAnalyzer leakage(circuit, lib, var);
  const std::vector<double> ladder = abb.ladder();

  const std::size_t n = circuit.num_gates();
  std::vector<double> widths(n, -1.0);
  for (std::size_t id = 0; id < n; ++id) {
    const Gate& g = circuit.gate(static_cast<GateId>(id));
    if (g.kind != CellKind::kInput) widths[id] = lib.area_um(g.kind, g.size);
  }

  const auto num_samples = static_cast<std::size_t>(mc.num_samples);
  AbbResult result;
  result.baseline.delay_ps.assign(num_samples, 0.0);
  result.baseline.leakage_na.assign(num_samples, 0.0);
  result.compensated.delay_ps.assign(num_samples, 0.0);
  result.compensated.leakage_na.assign(num_samples, 0.0);
  result.bias_v.assign(num_samples, 0.0);

  // Die i reuses the Monte-Carlo engine's counter-derived stream i, so the
  // baseline population is bit-identical to run_monte_carlo with the same
  // config (the experiment is paired) — for any thread count of either.
  parallel_for(
      mc.num_threads, num_samples,
      [&](std::size_t begin, std::size_t end, int /*worker*/) {
        obs::LocalCounter evals(obs, "abb.sta_evals");
        std::vector<ParamSample> samples(n);
        std::vector<ParamSample> biased(n);
        std::vector<double> scratch;
        for (std::size_t s = begin; s < end; ++s) {
          evals.add(1.0 + static_cast<double>(ladder.size()));
          Rng rng = Rng::stream(mc.seed, s);
          const GlobalSample die = sample_global(var, rng);
          for (std::size_t id = 0; id < n; ++id) {
            samples[id] = sample_gate(var, die, rng, widths[id]);
          }
          result.baseline.delay_ps[s] =
              sta.critical_delay_sample_ps(samples, mc.exact_delay, scratch);
          result.baseline.leakage_na[s] = leakage.total_sample_na(samples);

          // Sweep the ladder: min leakage subject to delay <= T; if nothing
          // meets T, the fastest (most forward) setting.
          double best_bias = ladder.front();
          double best_leak = std::numeric_limits<double>::infinity();
          double best_delay = std::numeric_limits<double>::infinity();
          bool any_feasible = false;
          double fastest_delay = std::numeric_limits<double>::infinity();
          double fastest_bias = 0.0;
          double fastest_leak = 0.0;
          for (double vbb : ladder) {
            const double dvth = -abb.k_body_v_per_v * vbb;
            for (std::size_t id = 0; id < n; ++id) {
              biased[id] = samples[id];
              biased[id].dvth_v += dvth;
            }
            const double delay =
                sta.critical_delay_sample_ps(biased, mc.exact_delay, scratch);
            const double leak = leakage.total_sample_na(biased);
            if (delay < fastest_delay) {
              fastest_delay = delay;
              fastest_bias = vbb;
              fastest_leak = leak;
            }
            if (delay <= t_max_ps && leak < best_leak) {
              any_feasible = true;
              best_leak = leak;
              best_bias = vbb;
              best_delay = delay;
            }
          }
          if (!any_feasible) {
            best_bias = fastest_bias;
            best_delay = fastest_delay;
            best_leak = fastest_leak;
          }
          result.compensated.delay_ps[s] = best_delay;
          result.compensated.leakage_na[s] = best_leak;
          result.bias_v[s] = best_bias;
        }
      });
  if (obs != nullptr) obs->add("abb.dies", static_cast<double>(num_samples));
  return result;
}

}  // namespace statleak
