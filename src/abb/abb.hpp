/// \file abb.hpp
/// \brief Adaptive body bias (ABB): post-silicon die-level compensation.
///
/// The complementary technique from the paper's reference cluster
/// (Keshavarzi ISLPED'99/'01, Tschanz JSSC'02): after fabrication, each die
/// measures itself and applies one body-bias voltage — forward bias (FBB)
/// lowers Vth to rescue slow dies, reverse bias (RBB) raises Vth to choke
/// leakage on fast dies. Die-to-die spread collapses from both sides:
///
///   dVth_bias = -k_body * Vbb      (Vbb > 0 forward, < 0 reverse)
///
/// statleak models the Tschanz experiment at simulator level: for every
/// Monte-Carlo die, sweep a discrete Vbb ladder, evaluate the die's delay
/// and leakage under each setting, and apply the per-die policy
/// "minimum leakage subject to delay <= T; if no setting meets T, the most
/// forward bias". Compare the resulting delay/leakage populations with the
/// uncompensated ones.

#pragma once

#include <vector>

#include "cells/library.hpp"
#include "mc/monte_carlo.hpp"
#include "netlist/circuit.hpp"
#include "obs/registry.hpp"
#include "tech/variation.hpp"

namespace statleak {

struct BodyBiasConfig {
  /// Vth shift per bias volt [V/V] (body-effect strength).
  double k_body_v_per_v = 0.15;
  /// Discrete bias ladder [V]: negative = reverse (slower, less leaky),
  /// positive = forward (faster, leakier).
  double vbb_min_v = -0.5;
  double vbb_max_v = 0.5;
  double vbb_step_v = 0.1;

  void validate() const;
  /// The ladder, ascending (reverse -> forward).
  std::vector<double> ladder() const;
};

struct AbbResult {
  McResult baseline;            ///< uncompensated population
  McResult compensated;         ///< per-die best-bias population
  std::vector<double> bias_v;   ///< chosen Vbb per die

  /// False when ExecConfig::deadline_ms expired mid-sweep. The populations
  /// stay paired: a die survives into all three arrays or none of them
  /// (dies whose evaluation produced a non-finite value under the
  /// quarantine policy are likewise dropped from all three).
  bool completed = true;
  std::uint64_t dies_requested = 0;
  std::uint64_t dies_done = 0;

  /// Fraction of dies using any reverse bias (Vbb < 0).
  double reverse_fraction() const;
  /// Fraction of dies using any forward bias (Vbb > 0).
  double forward_fraction() const;
};

/// Runs the paired experiment (baseline and compensated populations share
/// the same per-die parameter draws, so the comparison is sample-exact).
/// Honours McConfig::use_batched/batch_size: the batched engine evaluates a
/// block of dies per ladder step with the bias applied as a uniform dVth
/// shift inside the kernels, bit-identical to the scalar sweep. With a
/// registry attached, records the "abb.sweep" phase time and the
/// "abb.dies" / "abb.sta_evals" / "abb.batches" / "flat.build_ns" counters;
/// results are unaffected.
AbbResult run_abb_experiment(const Circuit& circuit, const CellLibrary& lib,
                             const VariationModel& var,
                             const BodyBiasConfig& abb, const McConfig& mc,
                             double t_max_ps, obs::Registry* obs = nullptr);

}  // namespace statleak
