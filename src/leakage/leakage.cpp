#include "leakage/leakage.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/normal.hpp"

namespace statleak {

namespace {

/// E[exp(a*X + b*X^2)] for X ~ N(0, sigma2). Requires 2*b*sigma2 < 1.
double gaussian_exp_moment(double a, double b, double sigma2) {
  const double denom = 1.0 - 2.0 * b * sigma2;
  STATLEAK_CHECK(denom > 0.0,
                 "quadratic leakage exponent too large for the variation "
                 "model (2*q*sigma_L^2 must stay below 1)");
  return std::exp(a * a * sigma2 / (2.0 * denom)) / std::sqrt(denom);
}

}  // namespace

double LeakageDistribution::stddev_na() const { return std::sqrt(var_na2); }

LeakageModel::LeakageModel(const CellLibrary& lib, const VariationModel& var)
    : lib_(lib), var_(var) {
  const auto& lvt = lib.sensitivities(Vth::kLow);
  const auto& hvt = lib.sensitivities(Vth::kHigh);
  // The Wilkinson covariance factor assumes one shared exponent pair; the
  // device model guarantees it (roll-off and slope are Vth-independent).
  STATLEAK_CHECK(std::abs(lvt.leak_cl_per_nm - hvt.leak_cl_per_nm) < 1e-12 &&
                     std::abs(lvt.leak_cv_per_v - hvt.leak_cv_per_v) < 1e-12,
                 "leakage exponents must not depend on the Vth class");
  cl_ = lvt.leak_cl_per_nm;
  cv_ = lvt.leak_cv_per_v;
  q_ = lvt.leak_q_per_nm2;

  sig_l2_ = var.sigma_l_inter_nm * var.sigma_l_inter_nm +
            var.sigma_l_intra_nm * var.sigma_l_intra_nm;
  sig_v_inter2_ = var.sigma_vth_inter_v * var.sigma_vth_inter_v;
  const double sig_v2 =
      sig_v_inter2_ + var.sigma_vth_intra_v * var.sigma_vth_intra_v;

  log_sigma2_ = cl_ * cl_ * sig_l2_ + cv_ * cv_ * sig_v2;
  log_cov_global_ = cl_ * cl_ * var.sigma_l_inter_nm * var.sigma_l_inter_nm +
                    cv_ * cv_ * sig_v_inter2_;
  cov_factor_ = std::exp(log_cov_global_) - 1.0;

  // First and second exponential moments of the per-gate exponent
  // Y = -cL*X_L - cV*X_V + q*X_L^2 with X_L, X_V independent Gaussians.
  // Cached for the common (non-Pelgrom) case where they are gate-invariant.
  mean_factor_ = gaussian_exp_moment(-cl_, q_, sig_l2_) *
                 gaussian_exp_moment(-cv_, 0.0, sig_v2);
  m2_factor_ = gaussian_exp_moment(-2.0 * cl_, 2.0 * q_, sig_l2_) *
               gaussian_exp_moment(-2.0 * cv_, 0.0, sig_v2);
}

GateLeakMoments LeakageModel::gate_moments(CellKind kind, Vth vth,
                                           double size) const {
  const double nominal = lib_.leakage_na(kind, vth, size);
  double mean_factor = mean_factor_;
  double m2_factor = m2_factor_;
  if (var_.pelgrom_vth_scaling) {
    // Width-dependent intra-die Vth sigma: recompute the exponential
    // moments for this gate's device width.
    const double sv_intra =
        var_.sigma_vth_intra_for(lib_.area_um(kind, size));
    const double sig_v2 = sig_v_inter2_ + sv_intra * sv_intra;
    mean_factor = gaussian_exp_moment(-cl_, q_, sig_l2_) *
                  gaussian_exp_moment(-cv_, 0.0, sig_v2);
    m2_factor = gaussian_exp_moment(-2.0 * cl_, 2.0 * q_, sig_l2_) *
                gaussian_exp_moment(-2.0 * cv_, 0.0, sig_v2);
  }
  GateLeakMoments m;
  m.mean_na = nominal * mean_factor;
  m.var_na2 = std::max(
      0.0, nominal * nominal * (m2_factor - mean_factor * mean_factor));
  return m;
}

LeakageAnalyzer::LeakageAnalyzer(const Circuit& circuit,
                                 const CellLibrary& lib,
                                 const VariationModel& var)
    : circuit_(circuit), model_(lib, var) {
  STATLEAK_CHECK(circuit.finalized(),
                 "LeakageAnalyzer requires a finalized circuit");
  rebuild();
}

void LeakageAnalyzer::rebuild() {
  STATLEAK_CHECK(!trial_active_, "rebuild inside a trial");
  const std::size_t n = circuit_.num_gates();
  moments_.assign(n, GateLeakMoments{});
  touched_.assign(n, 0);
  std::vector<double> mean(n, 0.0), mean_sq(n, 0.0), var(n, 0.0);
  for (GateId id = 0; id < n; ++id) {
    const Gate& g = circuit_.gate(id);
    if (g.kind == CellKind::kInput) continue;  // slots stay zero
    moments_[id] = model_.gate_moments(g.kind, g.vth, g.size);
    mean[id] = moments_[id].mean_na;
    mean_sq[id] = moments_[id].mean_na * moments_[id].mean_na;
    var[id] = moments_[id].var_na2;
  }
  sum_mean_.reset(n);
  sum_mean_sq_.reset(n);
  sum_var_.reset(n);
  sum_mean_.assign(mean);
  sum_mean_sq_.assign(mean_sq);
  sum_var_.assign(var);
}

void LeakageAnalyzer::write_moments(GateId id, const GateLeakMoments& m) {
  if (trial_active_ && touched_[id] == 0) {
    touched_[id] = 1;
    touched_list_.push_back(id);
    undo_.push_back({id, moments_[id]});
  }
  moments_[id] = m;
  sum_mean_.set(id, m.mean_na);
  sum_mean_sq_.set(id, m.mean_na * m.mean_na);
  sum_var_.set(id, m.var_na2);
}

void LeakageAnalyzer::on_gate_changed(GateId id) {
  const Gate& g = circuit_.gate(id);
  if (g.kind == CellKind::kInput) return;
  write_moments(id, model_.gate_moments(g.kind, g.vth, g.size));
}

void LeakageAnalyzer::begin_trial() {
  STATLEAK_CHECK(!trial_active_, "trials do not nest");
  trial_active_ = true;
}

void LeakageAnalyzer::commit_trial() {
  STATLEAK_CHECK(trial_active_, "no trial to commit");
  trial_active_ = false;
  for (GateId id : touched_list_) touched_[id] = 0;
  touched_list_.clear();
  undo_.clear();
}

void LeakageAnalyzer::rollback_trial() {
  STATLEAK_CHECK(trial_active_, "no trial to roll back");
  trial_active_ = false;
  for (const MomentUndo& u : undo_) {
    moments_[u.id] = u.moments;
    sum_mean_.set(u.id, u.moments.mean_na);
    sum_mean_sq_.set(u.id, u.moments.mean_na * u.moments.mean_na);
    sum_var_.set(u.id, u.moments.var_na2);
  }
  for (GateId id : touched_list_) touched_[id] = 0;
  touched_list_.clear();
  undo_.clear();
}

LeakageDistribution LeakageAnalyzer::assemble(double sum_mean,
                                              double sum_mean_sq,
                                              double sum_var) const {
  LeakageDistribution d;
  d.mean_na = sum_mean;
  const double pairwise =
      model_.cov_factor() * std::max(0.0, sum_mean * sum_mean - sum_mean_sq);
  d.var_na2 = sum_var + pairwise;
  d.fitted = Lognormal::from_moments(std::max(sum_mean, 1e-12), d.var_na2);
  return d;
}

LeakageDistribution LeakageAnalyzer::distribution() const {
  return assemble(sum_mean_.total(), sum_mean_sq_.total(), sum_var_.total());
}

double LeakageAnalyzer::nominal_na() const {
  double total = 0.0;
  const CellLibrary& lib = model_.library();
  for (GateId id = 0; id < circuit_.num_gates(); ++id) {
    const Gate& g = circuit_.gate(id);
    if (g.kind == CellKind::kInput) continue;
    total += lib.leakage_na(g.kind, g.vth, g.size);
  }
  return total;
}

LeakDeltaPricer LeakageAnalyzer::delta_pricer(double p) const {
  LeakDeltaPricer pricer;
  pricer.sum_mean = sum_mean_.total();
  pricer.sum_mean_sq = sum_mean_sq_.total();
  pricer.sum_var = sum_var_.total();
  pricer.cov_factor = model_.cov_factor();
  if (p != z_memo_p_) {
    z_memo_ = normal_inverse_cdf(p);
    z_memo_p_ = p;
  }
  pricer.z = z_memo_;
  return pricer;
}

double LeakageAnalyzer::quantile_if_na(GateId id, Vth vth, double size,
                                       double p) const {
  const Gate& g = circuit_.gate(id);
  STATLEAK_CHECK(g.kind != CellKind::kInput,
                 "cannot re-price a primary input");
  // Scalar delta on the exact tree totals — O(1) per candidate; see the
  // header for why pricing does not need the tree-shaped re-sum. The
  // expression sequence lives in LeakDeltaPricer so batched scoring shares
  // it bit for bit.
  return delta_pricer(p).quantile_na(moments_[id],
                                     model_.gate_moments(g.kind, vth, size));
}

double LeakageAnalyzer::total_sample_na(
    std::span<const ParamSample> samples) const {
  STATLEAK_CHECK(samples.size() == circuit_.num_gates(),
                 "one parameter sample per gate");
  const CellLibrary& lib = model_.library();
  double total = 0.0;
  for (GateId id = 0; id < circuit_.num_gates(); ++id) {
    const Gate& g = circuit_.gate(id);
    if (g.kind == CellKind::kInput) continue;
    total += lib.leakage_na(g.kind, g.vth, g.size, samples[id].dl_nm,
                            samples[id].dvth_v);
  }
  return total;
}

}  // namespace statleak
