/// \file batch_leakage.hpp
/// \brief Sample-blocked, gate-major total-leakage kernel.
///
/// Companion to BatchDelayKernel (see batch_delay.hpp for the blocking
/// scheme and bit-identity contract). Leakage needs no graph traversal —
/// the total is a plain sum over cells — so the kernel precomputes each
/// cell's nominal leakage and exponent coefficients and accumulates a block
/// of lanes gate-major. Per lane, the additions run over non-input gates in
/// ascending GateId order, exactly the order LeakageAnalyzer::
/// total_sample_na uses, so each lane's floating-point sum is bit-identical
/// to the scalar path.

#pragma once

#include <cstddef>
#include <vector>

#include "cells/library.hpp"
#include "netlist/flat_circuit.hpp"

namespace statleak {

class BatchLeakageKernel {
 public:
  /// Snapshots the implementation point (rebuild after size/Vth changes).
  BatchLeakageKernel(const FlatCircuit& flat, const CellLibrary& lib);

  /// Re-snapshots against a (possibly different) flat circuit or library,
  /// reusing the table allocations. All derived constants are recomputed,
  /// so a rebind()-ed kernel matches a freshly constructed one exactly.
  void rebind(const FlatCircuit& flat, const CellLibrary& lib);

  /// Accumulates total leakage [nA] of `lanes` samples: `dl`/`dv` are the
  /// gate-major deviation blocks ([g * stride + s]), `out[s]` receives lane
  /// s's total. `dvth_shift` as in BatchDelayKernel::critical_delay_block.
  void total_block(const double* dl, const double* dv, std::size_t stride,
                   std::size_t lanes, const double* dvth_shift,
                   double* out) const;

 private:
  template <bool kShift>
  void block_impl(const double* dl, const double* dv, std::size_t stride,
                  std::size_t lanes, double shift, double* out) const;

  // One entry per non-input gate, ascending GateId.
  std::vector<GateId> active_;
  std::vector<double> nominal_na_;  ///< leakage_na(kind, vth, size)
  std::vector<double> cl_;          ///< leak_cl_per_nm of the gate's class
  std::vector<double> cv_;          ///< leak_cv_per_v
  std::vector<double> q_;           ///< leak_q_per_nm2
};

}  // namespace statleak
