/// \file leakage.hpp
/// \brief Analytic full-chip leakage distribution under process variation.
///
/// Gate i's leakage is Inom_i * exp(-cL*dL_i - cV*dVth_i): lognormal, since
/// dL_i and dVth_i are Gaussian. The total is a sum of lognormals that are
/// positively correlated through the shared inter-die components. Following
/// the DAC'04 approach, the sum is approximated by matching its exact first
/// two moments to a single lognormal (Wilkinson's method):
///
///   E[S]   = sum_i E[I_i]
///   Var[S] = sum_i Var[I_i] + (e^{c_g} - 1) * ((sum_i E[I_i])^2
///                                              - sum_i E[I_i]^2)
///
/// where c_g = cL^2 sigma_Lg^2 + cV^2 sigma_Vg^2 is the log-domain
/// covariance every gate pair shares (cL and cV are process constants,
/// identical for both threshold classes). All percentile queries then reduce
/// to lognormal quantiles.
///
/// The analyzer keeps per-gate moments and the three Wilkinson totals in
/// fixed-shape pairwise-summation trees (util/tree_sum.hpp), so a
/// single-gate change re-prices in O(log n) AND every query stays
/// bit-identical to a from-scratch rebuild — the property the incremental
/// differential tests pin. A small trial API mirrors the SSTA engine's:
/// begin_trial() starts an undo log of touched gate moments and
/// rollback_trial() restores them in O(touched).

#pragma once

#include <algorithm>
#include <span>
#include <vector>

#include "cells/library.hpp"
#include "netlist/circuit.hpp"
#include "tech/variation.hpp"
#include "util/lognormal.hpp"
#include "util/tree_sum.hpp"

namespace statleak {

/// Linear-space moments of one gate's leakage current.
struct GateLeakMoments {
  double mean_na = 0.0;
  double var_na2 = 0.0;
};

/// The fitted full-chip leakage distribution.
struct LeakageDistribution {
  double mean_na = 0.0;
  double var_na2 = 0.0;
  Lognormal fitted;  ///< Wilkinson moment-matched lognormal

  double stddev_na() const;
  double quantile_na(double p) const { return fitted.quantile(p); }
  double cdf(double x_na) const { return fitted.cdf(x_na); }
};

/// Per-cell-type leakage statistics under a variation model.
class LeakageModel {
 public:
  LeakageModel(const CellLibrary& lib, const VariationModel& var);

  /// Log-domain variance of one gate's leakage (same for every gate: the
  /// exponent coefficients are process constants).
  double log_sigma2() const { return log_sigma2_; }

  /// Log-domain covariance shared by every gate pair (inter-die part).
  double log_cov_global() const { return log_cov_global_; }

  /// exp(log_cov_global()) - 1, the pairwise Wilkinson covariance factor.
  /// Cached at construction so per-candidate move pricing pays no exp().
  double cov_factor() const { return cov_factor_; }

  /// Moments of one gate's leakage. Includes the exact Gaussian
  /// quadratic-exponent correction when the node's leak_quadratic term is
  /// non-zero (applied to mean and variance; the pairwise covariance keeps
  /// the linear-exponent form — see DESIGN.md ablation A1), and honours the
  /// variation model's Pelgrom width scaling of intra-die Vth sigma.
  GateLeakMoments gate_moments(CellKind kind, Vth vth, double size) const;

  /// E[exp(exponent)] for a unit-nominal gate — the width-independent mean
  /// factor gate_moments() applies when Pelgrom scaling is off (with
  /// Pelgrom on the factor is per-gate; use gate_moments()).
  double mean_factor() const { return mean_factor_; }
  /// E[exp(2 * exponent)], same caveat.
  double m2_factor() const { return m2_factor_; }

  const CellLibrary& library() const { return lib_; }
  const VariationModel& variation() const { return var_; }

 private:
  const CellLibrary& lib_;
  const VariationModel& var_;
  double cl_ = 0.0;            ///< leakage exponent coefficient on dL [1/nm]
  double cv_ = 0.0;            ///< leakage exponent coefficient on dVth [1/V]
  double q_ = 0.0;             ///< quadratic dL exponent [1/nm^2]
  double sig_l2_ = 0.0;        ///< total dL variance [nm^2]
  double sig_v_inter2_ = 0.0;  ///< inter-die dVth variance [V^2]
  double log_sigma2_ = 0.0;
  double log_cov_global_ = 0.0;
  double cov_factor_ = 0.0;  ///< exp(log_cov_global_) - 1
  double mean_factor_ = 1.0;  ///< E[exp(exponent)] for a unit-nominal gate
  double m2_factor_ = 1.0;    ///< E[exp(2*exponent)]
};

/// One scan's worth of hypothetical-move pricing state, captured from a
/// LeakageAnalyzer: the three exact Wilkinson tree totals, the pairwise
/// covariance factor and the memoized normal quantile. quantile_na() prices
/// "what if one gate's moments moved old -> now" with the exact expression
/// sequence LeakageAnalyzer::quantile_if_na() evaluates — the analyzer's
/// method is itself implemented on this struct, so the batched scorer and
/// the scalar pricing path cannot drift by a bit. Capture once per scoring
/// scan (totals are committed state; they change only on commit).
struct LeakDeltaPricer {
  double sum_mean = 0.0;
  double sum_mean_sq = 0.0;
  double sum_var = 0.0;
  double cov_factor = 0.0;
  double z = 0.0;  ///< Phi^-1(p)

  double quantile_na(const GateLeakMoments& old_m,
                     const GateLeakMoments& now_m) const {
    const double sm = sum_mean - old_m.mean_na + now_m.mean_na;
    const double smsq = sum_mean_sq - old_m.mean_na * old_m.mean_na +
                        now_m.mean_na * now_m.mean_na;
    const double sv = sum_var - old_m.var_na2 + now_m.var_na2;
    const double pairwise = cov_factor * std::max(0.0, sm * sm - smsq);
    const double var_na2 = sv + pairwise;
    return Lognormal::from_moments(std::max(sm, 1e-12), var_na2)
        .quantile_z(z);
  }
};

/// Full-circuit analyzer with O(1) single-gate updates.
class LeakageAnalyzer {
 public:
  LeakageAnalyzer(const Circuit& circuit, const CellLibrary& lib,
                  const VariationModel& var);

  /// Recomputes all per-gate moments and totals. Totals are bit-identical
  /// to any sequence of on_gate_changed() updates reaching the same
  /// implementation (fixed-shape summation trees).
  void rebuild();

  /// Call after gate `id` changed size or Vth. O(log n).
  void on_gate_changed(GateId id);

  // ------------------------------------------------------------- trials --
  /// Starts logging moment overwrites so rollback_trial() can restore them.
  /// Trials do not nest.
  void begin_trial();
  /// Keeps the current state and drops the undo log.
  void commit_trial();
  /// Restores every gate moment the trial touched, in O(touched log n).
  void rollback_trial();
  bool trial_active() const { return trial_active_; }

  /// Current fitted distribution of total leakage.
  LeakageDistribution distribution() const;

  /// Mean total leakage [nA].
  double mean_na() const { return sum_mean_.total(); }
  /// Percentile of total leakage [nA].
  double quantile_na(double p) const { return distribution().quantile_na(p); }
  /// Total leakage with all gates at nominal parameters [nA].
  double nominal_na() const;

  /// What the fitted distribution would report if gate `id` had the given
  /// (vth, size) — without mutating anything. The optimizer's O(1) move
  /// pricing: the hypothetical totals are the exact tree totals adjusted by
  /// a scalar old-vs-new delta. That is deterministic (same state, same
  /// bits) but deliberately not re-summed through the trees — pricing only
  /// ranks candidates, and committed state always goes through the trees.
  double quantile_if_na(GateId id, Vth vth, double size, double p) const;

  /// Captures the current totals + quantile memo for a batched pricing
  /// scan. Bit-contract: quantile_if_na(id, vth, size, p) ==
  /// delta_pricer(p).quantile_na(cached_moments(id),
  ///                             model().gate_moments(kind, vth, size)).
  LeakDeltaPricer delta_pricer(double p) const;

  /// The committed moments of one gate (what pricing treats as "old").
  const GateLeakMoments& cached_moments(GateId id) const {
    return moments_[id];
  }

  /// Exact total leakage [nA] for one Monte-Carlo parameter sample
  /// (samples[id] = that gate's total deviations).
  double total_sample_na(std::span<const ParamSample> samples) const;

  const LeakageModel& model() const { return model_; }

 private:
  LeakageDistribution assemble(double sum_mean, double sum_mean_sq,
                               double sum_var) const;

  struct MomentUndo {
    GateId id = kInvalidGate;
    GateLeakMoments moments;
  };

  void write_moments(GateId id, const GateLeakMoments& m);

  const Circuit& circuit_;
  LeakageModel model_;
  std::vector<GateLeakMoments> moments_;
  TreeSum sum_mean_;     ///< per-gate mean leakage [nA]
  TreeSum sum_mean_sq_;  ///< per-gate squared mean [nA^2]
  TreeSum sum_var_;      ///< per-gate leakage variance [nA^2]

  bool trial_active_ = false;
  std::vector<MomentUndo> undo_;
  std::vector<char> touched_;
  std::vector<GateId> touched_list_;

  /// Memo of Phi^-1(p) for the last-seen pricing percentile (the optimizer
  /// always asks for one fixed p, so this hits ~always).
  mutable double z_memo_p_ = -1.0;
  mutable double z_memo_ = 0.0;
};

}  // namespace statleak
