#include "leakage/batch_leakage.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/simd.hpp"

namespace statleak {

BatchLeakageKernel::BatchLeakageKernel(const FlatCircuit& flat,
                                       const CellLibrary& lib) {
  rebind(flat, lib);
}

void BatchLeakageKernel::rebind(const FlatCircuit& flat,
                                const CellLibrary& lib) {
  active_.clear();
  nominal_na_.clear();
  cl_.clear();
  cv_.clear();
  q_.clear();
  for (GateId g = 0; g < flat.num_gates; ++g) {
    if (flat.is_input[g]) continue;
    active_.push_back(g);
    nominal_na_.push_back(lib.leakage_na(flat.kind[g], flat.vth[g],
                                         flat.size[g]));
    const DeviceSensitivities& s = lib.sensitivities(flat.vth[g]);
    cl_.push_back(s.leak_cl_per_nm);
    cv_.push_back(s.leak_cv_per_v);
    q_.push_back(s.leak_q_per_nm2);
  }
}

template <bool kShift>
void BatchLeakageKernel::block_impl(const double* dl, const double* dv,
                                    std::size_t stride, std::size_t lanes,
                                    double shift, double* out) const {
  for (std::size_t s = 0; s < lanes; ++s) out[s] = 0.0;
  for (std::size_t j = 0; j < active_.size(); ++j) {
    const GateId g = active_[j];
    const double* STATLEAK_RESTRICT dl_g = dl + g * stride;
    const double* STATLEAK_RESTRICT dv_g = dv + g * stride;
    const double nom = nominal_na_[j];
    const double cl = cl_[j];
    const double cv = cv_[j];
    const double q = q_[j];
    // Identical expression shape to CellLibrary::leakage_na(.., dl, dv):
    //   exponent = -cL*dL - cV*dVth + q*dL*dL;  leak = nominal * exp(..).
    for (std::size_t s = 0; s < lanes; ++s) {
      const double dlv = dl_g[s];
      const double dvv = kShift ? dv_g[s] + shift : dv_g[s];
      const double exponent = -cl * dlv - cv * dvv + q * dlv * dlv;
      out[s] += nom * std::exp(exponent);
    }
  }
}

void BatchLeakageKernel::total_block(const double* dl, const double* dv,
                                     std::size_t stride, std::size_t lanes,
                                     const double* dvth_shift,
                                     double* out) const {
  STATLEAK_CHECK(lanes > 0 && lanes <= stride,
                 "batch lanes must be in [1, stride]");
  if (dvth_shift != nullptr) {
    block_impl<true>(dl, dv, stride, lanes, *dvth_shift, out);
  } else {
    block_impl<false>(dl, dv, stride, lanes, 0.0, out);
  }
}

}  // namespace statleak
