/// \file statleak.hpp
/// \brief Umbrella header: the entire public statleak API in one include.
///
/// Applications (the examples, quick experiments, downstream embedders)
/// should include this single header; the per-module headers stay the
/// include surface *inside* the library, where fine-grained dependencies
/// keep rebuilds cheap. The umbrella is a pure aggregation — it defines
/// nothing itself, so including it alongside individual module headers is
/// harmless.
///
/// Grouping mirrors the source tree:
///   tech/     process parameters + variation decomposition
///   cells/    cell library, topologies, sensitivities
///   netlist/  circuit graph, ISCAS-85 .bench I/O, implementation I/O
///   gen/      synthetic benchmark generators
///   sta/      deterministic STA + per-sample evaluation
///   ssta/     canonical first-order SSTA (Clark max)
///   leakage/  Wilkinson lognormal leakage aggregation
///   mc/       deterministic parallel Monte-Carlo engine
///   spatial/  grid-correlated variation extension
///   power/    dynamic power + activity
///   abb/      adaptive body-bias experiment
///   mlv/      minimum-leakage input-vector search
///   opt/      deterministic + statistical dual-Vth/sizing optimizers
///   report/   the shared det-vs-stat experiment flow
///   api/      the command facade every front end drives
///   dist/     distributed sharded Monte-Carlo campaign runner
///   obs/      observability: registries, traces, JSON run reports
///   util/     shared math + execution utilities

#pragma once

// tech/
#include "tech/device.hpp"
#include "tech/process.hpp"
#include "tech/variation.hpp"

// cells/
#include "cells/cell_kind.hpp"
#include "cells/library.hpp"
#include "cells/topology.hpp"

// netlist/
#include "netlist/bench_io.hpp"
#include "netlist/circuit.hpp"
#include "netlist/impl_io.hpp"

// gen/
#include "gen/arithmetic.hpp"
#include "gen/builder.hpp"
#include "gen/prefix.hpp"
#include "gen/proxy.hpp"
#include "gen/random_dag.hpp"
#include "gen/structures.hpp"

// sta/
#include "sta/loads.hpp"
#include "sta/sta.hpp"

// ssta/
#include "ssta/canonical.hpp"
#include "ssta/ssta.hpp"

// leakage/
#include "leakage/leakage.hpp"

// mc/
#include "mc/arena.hpp"
#include "mc/checkpoint.hpp"
#include "mc/monte_carlo.hpp"
#include "mc/sweep.hpp"

// spatial/
#include "spatial/placement.hpp"
#include "spatial/spatial_analysis.hpp"
#include "spatial/spatial_model.hpp"
#include "spatial/spatial_ssta.hpp"

// power/
#include "power/activity.hpp"
#include "power/power.hpp"

// abb/
#include "abb/abb.hpp"

// mlv/
#include "mlv/mlv.hpp"
#include "mlv/state_leakage.hpp"

// opt/
#include "opt/config.hpp"
#include "opt/deterministic.hpp"
#include "opt/metrics.hpp"
#include "opt/statistical.hpp"

// report/
#include "report/flow.hpp"
#include "report/surface.hpp"

// api/
#include "api/driver.hpp"

// dist/
#include "dist/coordinator.hpp"
#include "dist/partition.hpp"
#include "dist/protocol.hpp"
#include "dist/worker.hpp"

// obs/
#include "obs/json.hpp"
#include "obs/registry.hpp"
#include "obs/report.hpp"
#include "obs/snapshot.hpp"

// util/
#include "util/clark.hpp"
#include "util/error.hpp"
#include "util/exec.hpp"
#include "util/fault.hpp"
#include "util/health.hpp"
#include "util/lognormal.hpp"
#include "util/normal.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
