#include "api/driver.hpp"

#include <sstream>
#include <utility>

#include "netlist/bench_io.hpp"
#include "netlist/impl_io.hpp"
#include "opt/deterministic.hpp"
#include "opt/statistical.hpp"
#include "sta/sta.hpp"
#include "tech/process.hpp"
#include "util/error.hpp"
#include "util/health.hpp"
#include "util/table.hpp"

namespace statleak::api {

namespace {

/// Records the headline mc.* gauges both MC paths publish. Gauge values
/// are pure functions of the (deterministic) result, so the single-host
/// and distributed reports agree bit-for-bit.
void publish_mc_gauges(const McResult& res, double t_max_ps,
                       obs::Registry* obs) {
  if (obs == nullptr || res.delay_ps.empty()) return;
  const SampleSummary d = res.delay_summary();
  const SampleSummary l = res.leakage_summary();
  obs->set_gauge("mc.delay_mean_ps", d.mean);
  obs->set_gauge("mc.delay_p99_ps", d.p99);
  obs->set_gauge("mc.leakage_mean_na", l.mean);
  obs->set_gauge("mc.leakage_p99_na", l.p99);
  obs->set_gauge("mc.timing_yield", res.timing_yield(t_max_ps));
}

McCommandResult make_mc_result(const McStudy& study, McResult&& res,
                               obs::Registry* obs) {
  publish_mc_gauges(res, study.t_max_ps, obs);
  McCommandResult out;
  out.result = std::move(res);
  out.mc = study.mc;
  out.t_max_ps = study.t_max_ps;
  out.circuit_name = study.study.circuit.name();
  out.impl_entries = study.study.impl_entries;
  return out;
}

}  // namespace

LoadedStudy load_study(const StudyInput& input) {
  STATLEAK_CHECK(input.bench_path.empty() != input.bench_text.empty(),
                 "study input needs exactly one of bench_path / bench_text");
  ProcessNode node;
  if (!input.node_name.empty()) {
    node = process_node_by_name(input.node_name);
  } else {
    STATLEAK_CHECK(input.node_nm == 100 || input.node_nm == 70,
                   "technology node must be 100 or 70");
    node = input.node_nm == 100 ? generic_100nm() : generic_70nm();
  }
  // Same corner-resolution path as every sweep-grid cell (SweepCorner::
  // resolve_node/resolve_variation), so a standalone run at a corner and
  // the sweep cell at that corner build identical models.
  node = at_corner(std::move(node), input.temperature_k, input.vdd_v);
  VariationModel var = VariationModel::typical_100nm();
  STATLEAK_CHECK(input.sigma_scale > 0.0, "sigma scale must be positive");
  if (input.sigma_scale != 1.0) var = var.scaled(input.sigma_scale);
  LoadedStudy study{
      input.bench_path.empty()
          ? read_bench_string(input.bench_text, input.circuit_name)
          : read_bench_file(input.bench_path),
      CellLibrary(node), var};
  STATLEAK_CHECK(input.impl_path.empty() || input.impl_text.empty(),
                 "study input allows at most one of impl_path / impl_text");
  if (!input.impl_path.empty()) {
    study.impl_entries = read_impl_file(input.impl_path, study.circuit);
  } else if (!input.impl_text.empty()) {
    std::istringstream in(input.impl_text);
    study.impl_entries = read_impl(in, study.circuit);
  }
  return study;
}

// --- mc ---------------------------------------------------------------------

McStudy prepare_mc_study(const McCommandConfig& config) {
  McStudy study{load_study(config.input), config.mc, config.t_max_ps};
  if (study.t_max_ps <= 0.0) {
    study.t_max_ps =
        1.1 * StaEngine(study.study.circuit, study.study.lib)
                  .critical_delay_ps();
  }
  if (config.importance_auto) {
    // Shift the global distribution toward the timing-failure region at
    // the delay target; inactive (plain MC) when the target is not in the
    // tail. Exact likelihood weights keep every estimate unbiased.
    study.mc.is_shift =
        compute_timing_is_shift(study.study.circuit, study.study.lib,
                                study.study.var, study.t_max_ps);
  }
  return study;
}

McCommandResult run_mc_command(const McCommandConfig& config,
                               obs::Registry* obs) {
  const McStudy study = prepare_mc_study(config);
  McResult res = run_monte_carlo(study.study.circuit, study.study.lib,
                                 study.study.var, study.mc, obs);
  return make_mc_result(study, std::move(res), obs);
}

McCommandResult finalize_mc_campaign(const McStudy& study, McPopulation&& pop,
                                     obs::Registry* obs) {
  McResult res =
      finalize_mc_population(study.study.circuit, study.study.lib,
                             study.study.var, study.mc, std::move(pop), obs);
  return make_mc_result(study, std::move(res), obs);
}

std::string mc_summary_text(const McCommandResult& r) {
  std::ostringstream out;
  const McResult& res = r.result;
  if (res.samples_restored > 0) {
    out << "resumed " << res.samples_restored << " of "
        << res.samples_requested << " samples from checkpoint "
        << r.mc.checkpoint_path << "\n";
  }
  if (!res.quarantined.empty()) {
    out << "quarantined " << res.quarantined.size()
        << " non-finite sample(s) (first: slot "
        << res.quarantined.front().slot << ", "
        << to_string(res.quarantined.front().cause) << ")\n";
  }
  if (res.delay_ps.empty()) {
    out << "no samples completed within the budget\n";
    return out.str();
  }
  const SampleSummary d = res.delay_summary();
  const SampleSummary l = res.leakage_summary();
  out << res.delay_ps.size() << " dies of " << r.circuit_name << ":\n"
      << "  delay   mean " << format_fixed(d.mean, 1) << " ps, sigma "
      << format_fixed(d.stddev, 1) << " ps, p99 "
      << format_fixed(d.p99, 1) << " ps\n"
      << "  leakage mean " << format_si(l.mean * 1e-9, "A")
      << ", p99 " << format_si(l.p99 * 1e-9, "A") << "\n"
      << "  timing yield at " << format_fixed(r.t_max_ps, 1) << " ps: "
      << format_fixed(res.timing_yield(r.t_max_ps), 4) << " +/- "
      << format_fixed(res.yield_stderr(r.t_max_ps), 4) << "\n"
      << "  mean 95% CI: delay +/- "
      << format_fixed(res.delay_mean_ci_ps(), 2) << " ps, leakage +/- "
      << format_si(res.leakage_mean_ci_na() * 1e-9, "A") << "\n";
  if (r.mc.sampler != McSampler::kPseudo) {
    out << "  sampler: " << to_string(r.mc.sampler) << "\n";
  }
  if (r.mc.is_shift.active()) {
    out << "  importance shift (" << format_fixed(r.mc.is_shift.l_sigma, 2)
        << ", " << format_fixed(r.mc.is_shift.v_sigma, 2)
        << ") sigma, effective samples " << format_fixed(res.ess(), 1)
        << " of " << res.delay_ps.size() << "\n";
  }
  if (r.mc.control_variate) {
    out << "  control variate: beta " << format_fixed(res.cv_beta(), 3)
        << ", corrected leakage mean "
        << format_si(res.cv_leakage_mean_na() * 1e-9, "A") << "\n";
  }
  if (!res.completed) {
    out << "deadline expired after " << res.samples_done << " of "
        << res.samples_requested << " samples"
        << (r.mc.checkpoint_path.empty()
                ? ""
                : "; progress saved, rerun to resume")
        << "\n";
  }
  return out.str();
}

// --- sweep ------------------------------------------------------------------

SweepCommandResult run_sweep_command(const SweepCommandConfig& config,
                                     obs::Registry* obs) {
  const LoadedStudy study = load_study(config.input);

  SweepCommandResult out;
  out.grid = config.grid;
  out.mc = config.mc;
  out.t_max_ps = config.t_max_ps;
  out.circuit_name = study.circuit.name();
  out.impl_entries = study.impl_entries;
  out.sweep = run_corner_sweep(study.circuit, config.grid, config.mc,
                               config.t_max_ps, obs);

  if (obs != nullptr) {
    obs->set_gauge("sweep.cells",
                   static_cast<double>(out.sweep.cells.size()));
    obs->set_gauge("sweep.cells_requested",
                   static_cast<double>(out.sweep.cells_requested));
    obs->set_gauge("sweep.grid_nodes",
                   static_cast<double>(config.grid.nodes.size()));
    obs->set_gauge("sweep.grid_temperatures",
                   static_cast<double>(config.grid.temperatures_k.size()));
    obs->set_gauge("sweep.grid_vdds",
                   static_cast<double>(config.grid.vdds_v.size()));
    obs->set_gauge("sweep.grid_sigma_scales",
                   static_cast<double>(config.grid.sigma_scales.size()));
    for (std::size_t i = 0; i < out.sweep.cells.size(); ++i) {
      const SweepCellResult& cell = out.sweep.cells[i];
      const std::string prefix = "sweep.cell" + std::to_string(i) + ".";
      obs->set_gauge(prefix + "t_max_ps", cell.t_max_ps);
      if (cell.result.delay_ps.empty()) continue;
      const SampleSummary d = cell.result.delay_summary();
      const SampleSummary l = cell.result.leakage_summary();
      obs->set_gauge(prefix + "delay_mean_ps", d.mean);
      obs->set_gauge(prefix + "delay_p99_ps", d.p99);
      obs->set_gauge(prefix + "leakage_mean_na", l.mean);
      obs->set_gauge(prefix + "leakage_p99_na", l.p99);
      obs->set_gauge(prefix + "timing_yield",
                     cell.result.timing_yield(cell.t_max_ps));
    }
    if (!out.sweep.completed) obs->mark_incomplete("deadline");
  }
  return out;
}

std::string sweep_summary_text(const SweepCommandResult& r) {
  std::ostringstream out;
  out << "sweep of " << r.circuit_name << ": " << r.sweep.cells.size()
      << " of " << r.sweep.cells_requested << " corners ("
      << r.grid.nodes.size() << " node x " << r.grid.temperatures_k.size()
      << " T x " << r.grid.vdds_v.size() << " Vdd x "
      << r.grid.sigma_scales.size() << " sigma)\n";
  for (std::size_t i = 0; i < r.sweep.cells.size(); ++i) {
    const SweepCellResult& cell = r.sweep.cells[i];
    out << "  [" << i << "] " << cell.corner.label() << ": ";
    if (cell.result.delay_ps.empty()) {
      out << "no samples completed within the budget\n";
      continue;
    }
    const SampleSummary d = cell.result.delay_summary();
    const SampleSummary l = cell.result.leakage_summary();
    out << cell.result.delay_ps.size() << " dies, delay mean "
        << format_fixed(d.mean, 1) << " ps, leakage mean "
        << format_si(l.mean * 1e-9, "A") << ", p99 "
        << format_si(l.p99 * 1e-9, "A") << ", yield at "
        << format_fixed(cell.t_max_ps, 1) << " ps "
        << format_fixed(cell.result.timing_yield(cell.t_max_ps), 4)
        << (cell.result.completed ? "" : " (partial)") << "\n";
  }
  if (!r.sweep.completed) {
    out << "deadline expired: surface is partial ("
        << r.sweep.cells.size() << " of " << r.sweep.cells_requested
        << " corners)"
        << (r.mc.checkpoint_path.empty() ? ""
                                         : "; progress saved, rerun to resume")
        << "\n";
  }
  return out.str();
}

// --- optimize ---------------------------------------------------------------

OptimizeCommandResult run_optimize_command(const OptimizeCommandConfig& config,
                                           obs::Registry* obs) {
  LoadedStudy study = load_study(config.input);

  OptConfig opt = config.opt;
  if (opt.t_max_ps <= 0.0) {
    opt.t_max_ps =
        config.t_max_factor * min_achievable_delay_ps(study.circuit,
                                                      study.lib);
  }

  OptimizeCommandResult out;
  out.t_max_ps = opt.t_max_ps;
  out.impl_entries = study.impl_entries;
  if (config.flow == OptimizeFlow::kStat) {
    out.result =
        StatisticalOptimizer(study.lib, study.var, opt).run(study.circuit,
                                                            obs);
  } else {
    out.result =
        DeterministicOptimizer(study.lib, study.var, opt).run(study.circuit,
                                                              obs);
  }
  out.metrics =
      measure_metrics(study.circuit, study.lib, study.var, opt.t_max_ps);
  out.circuit = std::move(study.circuit);
  return out;
}

// --- flow -------------------------------------------------------------------

FlowCommandResult run_flow_command(const FlowCommandConfig& config,
                                   obs::Registry* obs) {
  LoadedStudy study = load_study(config.input);
  FlowCommandResult out;
  out.impl_entries = study.impl_entries;
  out.outcome =
      run_flow(study.circuit, study.lib, study.var, config.flow, obs);
  return out;
}

}  // namespace statleak::api
