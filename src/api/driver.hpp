/// \file driver.hpp
/// \brief The command facade: every statleak entry point as a library call.
///
/// One definition of each command's semantics — input loading, default
/// resolution (delay targets, importance shifts), engine invocation and
/// observability gauges — shared by every front end. The CLI
/// (tools/statleak_cli.cpp) is a thin flag-parsing adapter over these
/// functions, and the distributed worker (src/dist/) calls the same facade,
/// so the single-host and distributed paths cannot drift: a `statleak mc`
/// run and a coordinator merge both end in finalize_mc_campaign() on the
/// same resolved study.
///
/// Conventions:
///   * Configs carry resolved *values*, not flag spellings. Front ends own
///     string validation (bad spellings are usage errors there); the facade
///     validates semantics with statleak::Error.
///   * Every run function takes a nullable obs::Registry* and records the
///     same gauges/phases regardless of front end.
///   * Results carry an exit_code() matching the CLI contract
///     (docs/ROBUSTNESS.md): 0 success, 4 deadline-expired partial result.

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "cells/library.hpp"
#include "mc/estimator.hpp"
#include "mc/monte_carlo.hpp"
#include "mc/sweep.hpp"
#include "netlist/circuit.hpp"
#include "obs/registry.hpp"
#include "opt/config.hpp"
#include "opt/metrics.hpp"
#include "report/flow.hpp"
#include "tech/variation.hpp"

namespace statleak::api {

/// Where a command's circuit comes from. Exactly one of `bench_path` /
/// `bench_text` must be set: a front end taking files passes the path; the
/// distributed coordinator ships the raw file bytes to workers, which pass
/// them as text (so every worker parses the same bytes regardless of its
/// filesystem). An implementation sidecar may ride along the same way.
struct StudyInput {
  std::string bench_path;
  std::string bench_text;
  /// Circuit name when parsing `bench_text` (paths carry their own).
  std::string circuit_name = "inline";
  std::string impl_path;
  std::string impl_text;
  /// Technology node in nm: 100 or 70 (library selection). Ignored when
  /// `node_name` is set.
  int node_nm = 100;
  /// Preset name (tech/process.hpp registry; accepts the "100"/"70"
  /// aliases). Empty: fall back to `node_nm`.
  std::string node_name;
  /// Environment corner, resolved through at_corner(): non-positive values
  /// mean "the node's calibrated default". A sweep cell and a standalone
  /// run at the same corner resolve through this same path, which is what
  /// makes their populations bit-identical.
  double temperature_k = 0.0;  ///< analysis temperature [K]
  double vdd_v = 0.0;          ///< supply [V]
  /// VariationModel sigma multiplier (1.0 = the typical model, untouched).
  double sigma_scale = 1.0;
};

/// A loaded study: the circuit with any sidecar applied, the node's cell
/// library, and the variation model every command uses.
struct LoadedStudy {
  Circuit circuit;
  CellLibrary lib;
  VariationModel var;
  std::size_t impl_entries = 0;  ///< sidecar entries applied (0 = none)
};

/// Loads and validates a StudyInput. Throws statleak::Error on unreadable
/// or malformed inputs, or when neither/both circuit sources are set.
LoadedStudy load_study(const StudyInput& input);

// --- mc ---------------------------------------------------------------------

struct McCommandConfig {
  StudyInput input;
  /// Engine config; `is_shift` may be overridden by `importance_auto`.
  McConfig mc;
  /// Delay target [ps]; <= 0 resolves to 1.1 x nominal critical delay.
  double t_max_ps = 0.0;
  /// Resolve mc.is_shift toward the timing tail at the (resolved) target
  /// (the `--importance auto` behavior).
  bool importance_auto = false;
};

/// A resolved MC study: everything pinned before any sample runs. The
/// coordinator resolves once and ships `mc` + `t_max_ps` verbatim to the
/// workers, so shift/target resolution happens in exactly one place.
struct McStudy {
  LoadedStudy study;
  McConfig mc;          ///< resolved (importance shift applied)
  double t_max_ps = 0.0;
};

/// Loads the input and resolves the delay target and importance shift.
McStudy prepare_mc_study(const McCommandConfig& config);

struct McCommandResult {
  McResult result;
  McConfig mc;            ///< the resolved config the samples ran under
  double t_max_ps = 0.0;
  std::string circuit_name;
  std::size_t impl_entries = 0;
  int exit_code() const { return result.completed ? 0 : 4; }
};

/// The `statleak mc` command: prepare_mc_study + run_monte_carlo +
/// finalize_mc_campaign's gauges. Single-host reference the distributed
/// path is byte-compared against.
McCommandResult run_mc_command(const McCommandConfig& config,
                               obs::Registry* obs = nullptr);

// --- sweep ------------------------------------------------------------------

struct SweepCommandConfig {
  /// Circuit + implementation source. The input's own corner fields
  /// (node_name/node_nm, temperature_k, vdd_v, sigma_scale) are ignored:
  /// the grid owns every cell's corner.
  StudyInput input;
  SweepGrid grid;
  /// Per-cell engine config. `deadline_ms` budgets the whole grid;
  /// `checkpoint_path` is a per-cell file prefix (see mc/sweep.hpp).
  McConfig mc;
  /// Timing constraint [ps] for every cell's yield; <= 0 resolves each
  /// cell to 1.1 x that corner's nominal critical delay.
  double t_max_ps = 0.0;
};

struct SweepCommandResult {
  SweepResult sweep;
  SweepGrid grid;
  McConfig mc;
  double t_max_ps = 0.0;  ///< as configured (0 = per-corner resolution)
  std::string circuit_name;
  std::size_t impl_entries = 0;
  int exit_code() const { return sweep.completed ? 0 : 4; }
};

/// The `statleak sweep` command body: load the study once, evaluate the
/// corner grid corner-major with batched-engine state reuse, publish the
/// sweep.* gauges (grid dimensions, per-cell yield/leakage surface) and a
/// "sweep" trace row per cell. Marks the registry incomplete with reason
/// "deadline" on a partial surface.
SweepCommandResult run_sweep_command(const SweepCommandConfig& config,
                                     obs::Registry* obs = nullptr);

/// The human-readable surface table `statleak sweep` prints.
std::string sweep_summary_text(const SweepCommandResult& r);

/// Turns an assembled population (the coordinator's merge of worker
/// shards) into the command result via finalize_mc_population, recording
/// the same mc.* gauges as run_mc_command — the two paths share every line
/// of statistics code downstream of the samples.
McCommandResult finalize_mc_campaign(const McStudy& study, McPopulation&& pop,
                                     obs::Registry* obs = nullptr);

/// The human-readable result block `statleak mc` prints (resume /
/// quarantine notes, summary statistics, sampler/importance/CV lines,
/// deadline note). Shared with `statleak serve` so the two commands'
/// stdout statistics are byte-comparable.
std::string mc_summary_text(const McCommandResult& r);

// --- optimize ---------------------------------------------------------------

enum class OptimizeFlow : std::uint8_t { kStat = 0, kDet = 1 };

struct OptimizeCommandConfig {
  StudyInput input;
  /// Optimizer knobs; `t_max_ps` <= 0 resolves to t_max_factor x D_min.
  OptConfig opt;
  double t_max_factor = 1.15;
  OptimizeFlow flow = OptimizeFlow::kStat;
};

struct OptimizeCommandResult {
  OptResult result;
  CircuitMetrics metrics;  ///< measured at the resolved target
  double t_max_ps = 0.0;
  /// The optimized implementation (front ends write .impl / .bench from it).
  Circuit circuit;
  std::size_t impl_entries = 0;
  int exit_code() const { return result.completed ? 0 : 4; }
};

/// The `statleak optimize` command body.
OptimizeCommandResult run_optimize_command(const OptimizeCommandConfig& config,
                                           obs::Registry* obs = nullptr);

// --- flow -------------------------------------------------------------------

struct FlowCommandConfig {
  StudyInput input;
  FlowConfig flow;
};

struct FlowCommandResult {
  FlowOutcome outcome;
  std::size_t impl_entries = 0;
  int exit_code() const { return outcome.completed ? 0 : 4; }
};

/// The `statleak flow` command body.
FlowCommandResult run_flow_command(const FlowCommandConfig& config,
                                   obs::Registry* obs = nullptr);

}  // namespace statleak::api
