/// \file canonical.hpp
/// \brief First-order canonical (linear-Gaussian) random delay form.
///
/// Every timing quantity is expressed as
///
///   A = mean + gl * Z_L + gv * Z_V + loc * z
///
/// where Z_L, Z_V are the *shared* standard-normal inter-die sources
/// (channel length and threshold voltage) and z is an aggregated independent
/// standard-normal capturing intra-die contributions. SUM adds means and
/// global coefficients and RSSes the local term; MAX uses Clark's moment
/// matching with the correlation induced by the shared globals, then
/// re-expresses the result in canonical form by tightness-blending the
/// global coefficients and assigning the variance remainder to the local
/// term (Visweswariah-style).

#pragma once

namespace statleak {

struct Canonical {
  double mean = 0.0;
  double gl = 0.0;   ///< sensitivity to the global dL source [ps per sigma]
  double gv = 0.0;   ///< sensitivity to the global dVth source [ps per sigma]
  double loc = 0.0;  ///< aggregated independent (intra-die) term [ps]

  double variance() const { return gl * gl + gv * gv + loc * loc; }
  double sigma() const;

  /// P(A <= t) under the Gaussian model.
  double cdf(double t) const;
  /// p-quantile.
  double quantile(double p) const;

  /// A + B where B's local part is independent of A's (gate delay added to
  /// an arrival time).
  static Canonical sum(const Canonical& a, const Canonical& b);

  /// Clark max of two canonicals; correlation comes from the shared global
  /// terms only (block-based approximation: path-history correlation of the
  /// local parts is ignored).
  /// If `tightness_out` is non-null it receives P(a >= b).
  static Canonical max(const Canonical& a, const Canonical& b,
                       double* tightness_out = nullptr);
};

}  // namespace statleak
