/// \file flat_incremental.hpp
/// \brief Flat-SoA incremental SSTA engine on a FlatCircuit snapshot.
///
/// Same analysis, same bits, different memory layout: FlatSstaEngine is a
/// drop-in replacement for SstaEngine in the statistical optimizer's hot
/// loop. Where the scalar engine chases Gate fanin vectors and keeps one
/// heap-allocated win-weight vector per gate (an allocation per logged
/// retime under trials), this engine walks the FlatCircuit CSR adjacency
/// and stores every per-fanin win weight in one flat array aligned with the
/// CSR fanin slots — a trial undo entry is a memcpy of a fixed slice, never
/// an allocation.
///
/// The second structural win is the own-delay cache: the scalar engine
/// recomputes the full canonical gate delay (library delay, sensitivities,
/// Pelgrom area lookup, a sqrt) for *every* gate a dirty cone touches, even
/// though only the moved gate and its fanin drivers changed delay. This
/// engine recomputes the canonical own delay eagerly at notification time —
/// O(moved gates) per move — and cone retiming reuses the cached value.
/// Because the cached value is produced by the same shared
/// canonical_gate_delay() helper the scalar engine calls (ssta/
/// delay_model.hpp), and a gate's own delay is a deterministic function of
/// its (kind, vth, size, load), every arrival is bit-identical to the
/// scalar engine's — the contract tests/ssta_incremental_test.cpp pins.
///
/// The third structural win is the output-max replay chain: the scalar
/// engine re-folds the Clark max over *all* primary outputs (and re-runs
/// the O(outputs^2) win-weight cascade) whenever any output arrival moved.
/// This engine caches the running chain value and per-step tightness for
/// every prefix of the output fold, replays only from the first output
/// whose arrival changed, stops as soon as the recomputed prefix converges
/// bitwise with the cached one, and defers the weight cascade entirely
/// until criticality is actually queried. Combined with the saturating
/// Clark max (ssta/delay_model.hpp), which skips the erfc/exp calls when
/// one operand statistically dominates, the replayed chain still produces
/// the scalar engine's bits: the fold order, expression shapes, and
/// tightness values are identical — only redundant work is elided.
///
/// Everything else mirrors SstaEngine's semantics exactly: levelized
/// dirty-cone retiming with bitwise early stop, trial begin/commit/rollback
/// with O(touched) restore, criticality refreshed by a backward pass over
/// the *original* circuit topo order (the accumulation order decides
/// criticality bits, so it must match the scalar engine's traversal).

#pragma once

#include <cstdint>
#include <vector>

#include "cells/library.hpp"
#include "netlist/circuit.hpp"
#include "netlist/flat_circuit.hpp"
#include "obs/registry.hpp"
#include "ssta/canonical.hpp"
#include "ssta/ssta.hpp"
#include "sta/loads.hpp"
#include "tech/variation.hpp"

namespace statleak {

/// Flat SoA SSTA engine. Holds references; circuit, library and variation
/// model must outlive it. The circuit's topology must stay frozen;
/// implementation attributes (size, Vth) may change between queries as long
/// as every change is reported via on_resize() / on_vth_change().
class FlatSstaEngine {
 public:
  FlatSstaEngine(const Circuit& circuit, const CellLibrary& lib,
                 const VariationModel& var);

  /// Call after gate `id` changed size: patches the load cache, refreshes
  /// the own-delay cache of `id` and its fanin drivers, and marks them
  /// dirty.
  void on_resize(GateId id);

  /// Call after gate `id` changed threshold class: refreshes its own-delay
  /// cache and marks it dirty.
  void on_vth_change(GateId id);

  /// Recomputes all loads and own delays and invalidates every timing
  /// cache. Not allowed inside a trial.
  void rebuild_loads();
  const LoadCache& loads() const { return loads_; }

  // ------------------------------------------------------------- trials --
  void begin_trial();
  void commit_trial();
  void rollback_trial();
  bool trial_active() const { return trial_active_; }

  /// Toggles dirty-cone retiming (default on); the full-pass baseline is
  /// bit-identical, same as the scalar engine's toggle.
  void set_incremental(bool enabled) { incremental_ = enabled; }
  bool incremental() const { return incremental_; }

  /// Caps the per-trial arrival-undo log. A trial whose dirty cone logs
  /// more arrivals than the cap stops logging and marks its baseline lost:
  /// a rollback then reprimes with a full pass (bit-identical by the
  /// incremental/full-pass contract) instead of restoring entry by entry.
  /// Cones that large cover a constant fraction of the circuit, so the
  /// full pass costs the same order as the logged restore it replaces —
  /// while commit-heavy phases stop paying the log tax on huge cones
  /// entirely. Default max(n/8 + 1024); the setter exists for tests, which
  /// shrink it to force the lost-baseline path on small circuits.
  void set_trial_log_cap(std::size_t cap) { trial_log_cap_ = cap; }
  std::size_t trial_log_cap() const { return trial_log_cap_; }

  /// Attaches an observability registry (nullptr detaches). Shares the
  /// scalar engine's "ssta.analyze_passes" / "ssta.forward_passes" names
  /// and counts its own layout-specific work under
  /// "ssta.flat_full_passes" / "ssta.flat_incremental_passes" /
  /// "ssta.flat_cone_gates_retimed".
  void attach_observer(obs::Registry* registry) { obs_ = registry; }

  /// Canonical delay of one gate, recomputed from the live circuit (same
  /// definition as the cached value used during retiming).
  Canonical gate_delay(GateId id) const;

  /// Full analysis with criticality (copy).
  SstaResult analyze() const;
  /// Full analysis with criticality, no copy (the optimizer's view).
  const SstaResult& analyze_ref() const;
  /// Forward-only analysis: circuit-delay canonical without criticality.
  Canonical circuit_delay() const;

  /// The frozen topology snapshot the engine runs on (for callers that
  /// want to share the CSR arrays, e.g. batched move pricing).
  const FlatCircuit& flat() const { return flat_; }

 private:
  struct ArrivalUndo {
    GateId id = kInvalidGate;
    Canonical arrival;
    std::uint32_t win_off = 0;  ///< into win_undo_; length = fanin count
  };
  struct LoadUndo {
    GateId id = kInvalidGate;
    double load_ff = 0.0;
  };
  struct DelayUndo {
    GateId id = kInvalidGate;
    Canonical delay;
  };

  /// Sentinel for out_dirty_min_ when no output arrival is pending replay.
  static constexpr std::uint32_t kNoDirty = 0xFFFFFFFFu;

  void mark_dirty(GateId id);
  void refresh_own_delay(GateId id) const;
  void log_own_delay(GateId id) const;
  void flush() const;
  void full_pass() const;
  bool retime_gate(GateId id, bool& state_changed) const;
  void replay_output_chain() const;
  void refresh_sink_weights() const;
  void refresh_criticality() const;
  void log_arrival(GateId id) const;
  void clear_pending() const;

  const Circuit& circuit_;
  const CellLibrary& lib_;
  const VariationModel& var_;
  LoadCache loads_;
  FlatCircuit flat_;
  /// Original Circuit::topo_order() — NOT flat_.topo (which re-buckets by
  /// level): the criticality backward pass accumulates in traversal order,
  /// so bit-identity with the scalar engine requires the same order.
  std::vector<GateId> topo_;
  std::vector<int> level_;      ///< per-gate logic level
  std::vector<char> is_output_; ///< per-gate primary-output flag
  obs::Registry* obs_ = nullptr;
  bool incremental_ = true;

  mutable SstaResult state_;
  mutable std::vector<double> win_;  ///< CSR win weights (fanin-slot aligned)
  mutable std::vector<double> sink_weights_;
  mutable std::vector<Canonical> own_delay_;  ///< cached canonical delays
  mutable bool primed_ = false;
  mutable bool crit_primed_ = false;

  // Output-max replay chain: out_prefix_[i] is the running Clark-chain
  // value after folding outputs[0..i], out_tight_[i] the tightness of the
  // fold step that consumed outputs[i] (index 0 unused). The inclusive
  // dirty window [out_dirty_min_, out_dirty_max_] names the outputs whose
  // arrivals changed since the chain was last replayed; outside a dirty
  // window the cached suffix is bit-exact. sink_weights_ is derived from
  // out_tight_ lazily — weights_stale_ marks it pending.
  std::vector<std::uint32_t> out_pos_;  ///< gate -> index into flat_.outputs
  mutable std::vector<Canonical> out_prefix_;
  mutable std::vector<double> out_tight_;
  mutable std::uint32_t out_dirty_min_ = kNoDirty;
  mutable std::uint32_t out_dirty_max_ = 0;
  mutable bool weights_stale_ = true;

  mutable std::vector<GateId> pending_;
  mutable std::vector<char> queued_;
  mutable std::vector<std::vector<GateId>> buckets_;  ///< scratch, by level

  mutable std::vector<Canonical> operands_;       ///< retime scratch
  mutable std::vector<double> weights_scratch_;   ///< max fanin degree

  bool trial_active_ = false;
  std::size_t trial_log_cap_ = 0;  ///< set in the constructor
  mutable bool trial_lost_baseline_ = false;
  mutable std::vector<ArrivalUndo> arrival_undo_;
  mutable std::vector<double> win_undo_;  ///< flat saved win-weight slices
  mutable std::vector<LoadUndo> load_undo_;
  mutable std::vector<DelayUndo> delay_undo_;
  mutable std::vector<char> touched_;  ///< 1: arrival, 2: load, 4: own delay
  mutable std::vector<GateId> touched_list_;
  mutable std::vector<GateId> trial_pending_;
  mutable Canonical trial_out_max_;
  mutable std::vector<double> trial_sink_weights_;
  mutable bool trial_primed_ = false;
  mutable bool trial_crit_primed_ = false;
  mutable bool trial_crit_overwritten_ = false;
  /// Copy-on-replay save of the output chain: the prefix/tightness arrays
  /// are snapshotted at most once per trial, the first time a replay would
  /// overwrite them, so trials that never touch an output arrival pay
  /// nothing for chain restore.
  mutable bool trial_chain_saved_ = false;
  mutable std::vector<Canonical> trial_out_prefix_;
  mutable std::vector<double> trial_out_tight_;
  mutable std::uint32_t trial_out_dirty_min_ = kNoDirty;
  mutable std::uint32_t trial_out_dirty_max_ = 0;
  mutable bool trial_weights_stale_ = true;
};

}  // namespace statleak
