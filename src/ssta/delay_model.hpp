/// \file delay_model.hpp
/// \brief Shared per-gate canonical-delay and Clark-chain helpers.
///
/// Both SSTA engines — the scalar object-graph SstaEngine (ssta.hpp) and
/// the flat SoA FlatSstaEngine (flat_incremental.hpp) — must produce
/// *bit-identical* arrivals for the optimizer's flat/scalar differential
/// contract to hold. The two computations that decide every arrival bit are
/// the gate's own canonical delay and the iterated Clark MAX over its fanin
/// arrivals. Defining both once, inline, and calling them from both engines
/// makes the bit-identity hold by construction: there is exactly one
/// expression shape, so the IEEE-754 operation order per gate cannot drift
/// between the engines.

#pragma once

#include <algorithm>
#include <cmath>
#include <span>

#include "cells/library.hpp"
#include "ssta/canonical.hpp"
#include "tech/variation.hpp"
#include "util/normal.hpp"

namespace statleak {

/// Canonical delay of one gate under the variation model: nominal delay at
/// the given load, first-order global dL/dVth sensitivities, and the
/// intra-die contributions RSSed into the local term (the intra Vth sigma
/// honours Pelgrom width scaling through the gate's drawn area).
inline Canonical canonical_gate_delay(const CellLibrary& lib,
                                      const VariationModel& var, CellKind kind,
                                      Vth vth, double size, double load_ff) {
  Canonical d;
  if (kind == CellKind::kInput) return d;
  const double d0 = lib.delay_ps(kind, vth, size, load_ff);
  const auto& s = lib.sensitivities(vth);
  d.mean = d0;
  d.gl = d0 * s.delay_sl_per_nm * var.sigma_l_inter_nm;
  d.gv = d0 * s.delay_sv_per_v * var.sigma_vth_inter_v;
  const double sigma_vth_intra =
      var.sigma_vth_intra_for(lib.area_um(kind, size));
  const double loc_l = d0 * s.delay_sl_per_nm * var.sigma_l_intra_nm;
  const double loc_v = d0 * s.delay_sv_per_v * sigma_vth_intra;
  d.loc = std::sqrt(loc_l * loc_l + loc_v * loc_v);
  return d;
}

/// Iterated Clark max over a non-empty operand set, recording per-operand
/// win probabilities into `weights` (which must hold operands.size()
/// doubles). Approximate: sequential binary-max tightness products — the
/// same chain a full forward pass uses, so re-running it over an unchanged
/// operand set reproduces every bit.
inline Canonical clark_max_chain(std::span<const Canonical> operands,
                                 double* weights) {
  Canonical running = operands[0];
  weights[0] = 1.0;
  for (std::size_t i = 1; i < operands.size(); ++i) {
    double tight = 1.0;
    running = Canonical::max(running, operands[i], &tight);
    for (std::size_t j = 0; j < i; ++j) weights[j] *= tight;
    weights[i] = 1.0 - tight;
  }
  return running;
}

/// Normalized-skew threshold beyond which the Clark max saturates: for
/// |alpha| >= 8.75, normal_cdf(|alpha|) rounds to exactly 1.0 (the
/// complement Q(8.75) ≈ 1.05e-18 is far below half an ulp of 1.0) and the
/// losing operand's contributions to the blended mean and second moment
/// fall below half an ulp of the winner's at every accumulation step of
/// clark_max — provided the sign guards in canonical_max_saturating hold.
/// The worst-case margin (second-moment term, ≈2.3e-18 of the surviving
/// moment, versus a relative half-ulp of at least 5.5e-17) is ≥19x, which
/// tolerates several orders of magnitude of libm erfc inaccuracy. The
/// cutover where the proof would first fail is alpha ≈ 8.3.
inline constexpr double kClarkSaturationAlpha = 8.75;

/// Bit-identical replacement for Canonical::max that skips the expensive
/// transcendentals (2x erfc + 1x exp in util/clark.cpp) when one operand
/// statistically dominates the other. Every branch — the two saturated
/// fast paths, the degenerate case, and the general Clark formula —
/// replicates the exact expression shapes of clark_max (util/clark.cpp)
/// followed by Canonical::max's sensitivity-blend postlude, so the result
/// (mean/gl/gv/loc and *tightness_out) equals Canonical::max(a, b,
/// tightness_out) bit for bit on every input (pinned by
/// tests/clark_saturation_test.cpp). Inlining the non-saturated branches
/// here (instead of calling Canonical::max) avoids recomputing the
/// variance/sigma/rho/theta prefix a second time.
///
/// Saturation argument, winner w / loser l, alpha = (a.mean - b.mean)/theta:
///  - tightness: normal_cdf(±alpha) is exactly 1.0 resp. < 1.05e-18.
///  - sign guard `l.mean >= -w.mean`: forces w.mean > 0 and |l.mean| <=
///    w.mean (the opposite ordering contradicts |alpha| >= 8.75), so every
///    absorbed term is bounded by a tiny multiple of the surviving one:
///    |l.mean|*cdf <= 1.05e-18*w.mean and theta*pdf <= 0.229*w.mean*8.7e-18,
///    both under the relative half-ulp floor 5.5e-17*w.mean —
///    fl(w.mean + t) == w.mean at each left-associated accumulation step.
///  - second moment: theta <= 0.229*w.mean bounds the loser's variance by
///    (sigma_w + 0.229*w.mean)^2, so (var_l + l.mean^2)*cdf <= 2.2*(var_w +
///    w.mean^2)*1.05e-18, again absorbed. The (m1+m2)*theta*phi term is
///    <= 4.0e-18*(var_w + w.mean^2). Non-degeneracy (theta >= 1e-15) plus
///    the sign guard puts w.mean >= 4.4e-15, comfortably normal, so the
///    relative half-ulp floor applies.
/// The variance keeps clark_max's exact rounding detour through the second
/// moment — fl(fl(var_w + w.mean^2) - w.mean^2) is NOT var_w in general —
/// and the gl/gv blend executes literally with the true tightness (on the
/// alpha <= -8.75 side tight*a.gl can be significant when b.gl is tiny), at
/// the price of one erfc there. fl(1.0 - tight) == 1.0 for tight < 1.05e-18.
inline Canonical canonical_max_saturating(const Canonical& a,
                                          const Canonical& b,
                                          double* tightness_out) {
  const double var_a = a.variance();
  const double var_b = b.variance();
  const double sig_a = std::sqrt(var_a);
  const double sig_b = std::sqrt(var_b);
  double rho = 0.0;
  if (sig_a > 0.0 && sig_b > 0.0) {
    rho = (a.gl * b.gl + a.gv * b.gv) / (sig_a * sig_b);
    rho = std::clamp(rho, -1.0, 1.0);
  }
  const double theta2 =
      std::max(0.0, var_a + var_b - 2.0 * rho * sig_a * sig_b);
  const double theta = std::sqrt(theta2);
  // clark_max judges degeneracy with theta < 1e-7*scale + 1e-15, scale =
  // sqrt(max(var_a, var_b, 1e-300)). Since (x + y)^2 <= 2x^2 + 2y^2, that
  // threshold squared is at most 2e-14*max_var + 2e-30; testing theta2
  // against double that keeps a sqrt(2) margin (the 2x^2+2y^2 bound is
  // tight at x == y, where rounding could otherwise flip the branch), so a
  // pass certainly clears clark_max's test and the scale sqrt is skipped.
  // Only the ambiguous band evaluates the predicate literally.
  const double max_var = std::max({var_a, var_b, 1e-300});
  const bool degenerate =
      theta2 > 4.1e-14 * max_var + 4.1e-30
          ? false
          : theta < 1e-7 * std::sqrt(max_var) + 1e-15;
  double tight;
  double mean;
  double variance;
  if (degenerate) {
    // clark_max's degenerate branch: X - Y is numerically deterministic,
    // the max is the operand with the larger mean, variance untouched (no
    // second-moment detour).
    if (a.mean >= b.mean) {
      mean = a.mean;
      variance = var_a;
      tight = 1.0;
    } else {
      mean = b.mean;
      variance = var_b;
      tight = 0.0;
    }
  } else {
    const double alpha = (a.mean - b.mean) / theta;
    if (alpha >= kClarkSaturationAlpha && b.mean >= -a.mean) {
      // Saturated, a wins: Phi rounds to exactly 1.0, the b-side terms are
      // absorbed. fl(1.0*a.gl + 0.0*b.gl) == a.gl, so the blend is skipped.
      if (tightness_out != nullptr) *tightness_out = 1.0;
      Canonical out;
      out.mean = a.mean;
      const double second_moment = var_a + a.mean * a.mean;
      const double sat_var = std::max(0.0, second_moment - out.mean * out.mean);
      out.gl = a.gl;
      out.gv = a.gv;
      const double global_var = out.gl * out.gl + out.gv * out.gv;
      out.loc = std::sqrt(std::max(0.0, sat_var - global_var));
      return out;
    }
    if (alpha <= -kClarkSaturationAlpha && a.mean >= -b.mean) {
      // Saturated, b wins: the a-side mean/moment terms are absorbed, but
      // the gl/gv blend still needs the true (tiny) tightness — one erfc,
      // no pdf, no second erfc.
      tight = normal_cdf(alpha);  // same call as clark_max
      mean = b.mean;
      const double second_moment = var_b + b.mean * b.mean;
      variance = std::max(0.0, second_moment - mean * mean);
    } else {
      // General case: clark_max's full formula, inlined.
      const double phi = normal_pdf(alpha);
      const double Phi = normal_cdf(alpha);
      const double Phi_neg = normal_cdf(-alpha);
      tight = Phi;
      mean = a.mean * Phi + b.mean * Phi_neg + theta * phi;
      const double second_moment = (var_a + a.mean * a.mean) * Phi +
                                   (var_b + b.mean * b.mean) * Phi_neg +
                                   (a.mean + b.mean) * theta * phi;
      variance = std::max(0.0, second_moment - mean * mean);
    }
  }
  // Canonical::max's postlude, executed literally with the branch's
  // tightness (1.0 / 0.0 in the degenerate case).
  if (tightness_out != nullptr) *tightness_out = tight;
  Canonical out;
  out.mean = mean;
  out.gl = tight * a.gl + (1.0 - tight) * b.gl;
  out.gv = tight * a.gv + (1.0 - tight) * b.gv;
  const double global_var = out.gl * out.gl + out.gv * out.gv;
  out.loc = std::sqrt(std::max(0.0, variance - global_var));
  return out;
}

/// clark_max_chain with the saturating binary max and a skipped rescale
/// row whenever a step's tightness is exactly 1.0 (x * 1.0 == x bit for bit
/// for every finite x, including -0.0 and subnormals). Bit-identical to
/// clark_max_chain on both the returned Canonical and every weight.
inline Canonical clark_max_chain_saturating(std::span<const Canonical> operands,
                                            double* weights) {
  Canonical running = operands[0];
  weights[0] = 1.0;
  for (std::size_t i = 1; i < operands.size(); ++i) {
    double tight = 1.0;
    running = canonical_max_saturating(running, operands[i], &tight);
    if (tight != 1.0) {
      for (std::size_t j = 0; j < i; ++j) weights[j] *= tight;
    }
    weights[i] = 1.0 - tight;
  }
  return running;
}

}  // namespace statleak
