/// \file ssta.hpp
/// \brief Block-based statistical static timing analysis, with incremental
///        dirty-cone retiming.
///
/// Forward PERT traversal propagating canonical forms: at each gate, the
/// fanin arrivals are combined with iterated Clark MAX (recording per-fanin
/// "win" probabilities), then the gate's own canonical delay is added. The
/// circuit delay is the Clark MAX over all primary outputs. A backward pass
/// turns the recorded win probabilities into per-gate criticality — the
/// probability mass of critical paths through each gate — which the
/// statistical optimizer uses to price timing cost.
///
/// Incremental engine contract
/// ---------------------------
/// The engine caches per-gate arrivals and fanin win weights from the last
/// query. Implementation changes are reported through on_resize() /
/// on_vth_change(); the next query re-propagates only the levelized fanout
/// cone of the dirty gates, stopping early where a recomputed arrival is
/// bit-identical to its cached value. Because each gate's iterated Clark MAX
/// is a deterministic function of its fanin arrivals and the gate's own
/// parameters, and cones are re-propagated in the same topological order a
/// full pass would use, every query returns values *bit-identical* to a
/// from-scratch analysis (pinned by tests/ssta_incremental_test.cpp).
///
/// The trial API serves the optimizer's tentative-apply/reject pattern:
/// begin_trial() starts an undo log; queries and notifications work as
/// usual; rollback_trial() restores every cached value the trial touched in
/// O(touched) — never a full rebuild. The caller restores the circuit's own
/// size/Vth fields (the engine only reads the circuit). commit_trial()
/// keeps the new state and drops the log.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "cells/library.hpp"
#include "netlist/circuit.hpp"
#include "obs/registry.hpp"
#include "ssta/canonical.hpp"
#include "sta/loads.hpp"
#include "tech/variation.hpp"

namespace statleak {

/// Result of one SSTA pass.
struct SstaResult {
  std::vector<Canonical> arrival;  ///< per gate
  Canonical circuit_delay;         ///< max over primary outputs
  std::vector<double> criticality; ///< per gate, in [0, 1]; sums to ~1 per cut

  /// Timing yield P(D <= t_max) under the Gaussian circuit-delay model.
  double yield(double t_max_ps) const { return circuit_delay.cdf(t_max_ps); }
  /// Delay at the given yield (quantile of the circuit delay).
  double delay_at_yield_ps(double eta) const {
    return circuit_delay.quantile(eta);
  }
};

/// SSTA engine. Holds references; circuit, library and variation model must
/// outlive it. The circuit's topology must stay frozen; implementation
/// attributes (size, Vth) may change between queries as long as every
/// change is reported via on_resize() / on_vth_change() — unreported
/// mutations leave the caches stale, exactly like LoadCache.
class SstaEngine {
 public:
  SstaEngine(const Circuit& circuit, const CellLibrary& lib,
             const VariationModel& var);

  /// Call after gate `id` changed size: patches the load cache and marks
  /// `id` and its fanin drivers (whose loads changed) dirty.
  void on_resize(GateId id);

  /// Call after gate `id` changed threshold class: marks `id` dirty (Vth
  /// affects only the gate's own delay, never any load).
  void on_vth_change(GateId id);

  /// Recomputes all loads and invalidates every timing cache (after bulk
  /// mutations that were not reported gate by gate). Not allowed inside a
  /// trial.
  void rebuild_loads();
  const LoadCache& loads() const { return loads_; }

  // ------------------------------------------------------------- trials --
  /// Starts logging cache overwrites so rollback_trial() can restore them.
  /// Trials do not nest.
  void begin_trial();
  /// Keeps the current state and drops the undo log.
  void commit_trial();
  /// Restores loads, arrivals, win weights and the circuit-delay cache to
  /// their begin_trial() values in O(touched). The caller is responsible
  /// for restoring the circuit's size/Vth fields it changed during the
  /// trial (the engine never writes the circuit).
  void rollback_trial();
  bool trial_active() const { return trial_active_; }

  /// Toggles dirty-cone retiming (default on). When off, every query
  /// recomputes from scratch — same code path a fresh engine would run, so
  /// results are bit-identical either way; the toggle exists as the
  /// full-pass baseline for benchmarks and equivalence tests.
  void set_incremental(bool enabled) { incremental_ = enabled; }
  bool incremental() const { return incremental_; }

  /// Attaches an observability registry (nullptr detaches). The engine
  /// counts its passes ("ssta.analyze_passes", "ssta.forward_passes") and
  /// the dirty-cone statistics ("ssta.full_passes",
  /// "ssta.incremental_passes", "ssta.cone_gates_retimed");
  /// observation never changes any computed value.
  void attach_observer(obs::Registry* registry) { obs_ = registry; }

  /// Canonical delay of one gate under the variation model.
  Canonical gate_delay(GateId id) const;

  /// Full analysis with criticality. Returns a copy of the refreshed
  /// cached state; bit-identical to a from-scratch two-pass analysis.
  SstaResult analyze() const;

  /// Like analyze(), without the copy: the reference stays valid until the
  /// engine is destroyed but its contents change on the next notification
  /// or query. The optimizer's per-iteration view.
  const SstaResult& analyze_ref() const;

  /// Forward-only analysis: circuit-delay canonical without refreshing
  /// per-gate criticality (cheaper; used in the optimizer's accept/reject
  /// tests).
  Canonical circuit_delay() const;

 private:
  struct ArrivalUndo {
    GateId id = kInvalidGate;
    Canonical arrival;
    std::vector<double> win;
  };
  struct LoadUndo {
    GateId id = kInvalidGate;
    double load_ff = 0.0;
  };

  void mark_dirty(GateId id);
  /// Brings arrivals, win weights and the circuit-delay canonical up to
  /// date (full pass when unprimed or incremental mode is off; dirty-cone
  /// retiming otherwise).
  void flush() const;
  void full_pass() const;
  /// Recomputes one gate's arrival/win from its fanins; returns whether
  /// the arrival changed bitwise. ORs `state_changed` when the arrival or
  /// the win weights moved (criticality depends on both).
  bool retime_gate(GateId id, bool& state_changed) const;
  void recompute_output_max() const;
  void refresh_criticality() const;
  void log_arrival(GateId id) const;
  void clear_pending() const;

  const Circuit& circuit_;
  const CellLibrary& lib_;
  const VariationModel& var_;
  LoadCache loads_;
  obs::Registry* obs_ = nullptr;
  bool incremental_ = true;

  // Cached analysis state (logically const: queries always return the same
  // values a from-scratch engine would).
  mutable SstaResult state_;
  mutable std::vector<std::vector<double>> win_;  ///< per-gate fanin weights
  mutable std::vector<double> sink_weights_;      ///< per primary output
  mutable bool primed_ = false;       ///< arrival/win/circuit_delay current
  mutable bool crit_primed_ = false;  ///< criticality current

  // Dirty bookkeeping. `queued_` doubles as the membership flag for both
  // the pending list and the per-level buckets during a flush.
  mutable std::vector<GateId> pending_;
  mutable std::vector<char> queued_;
  mutable std::vector<std::vector<GateId>> buckets_;  ///< scratch, by level

  // Scratch for per-gate recomputation (avoids per-gate allocation).
  mutable std::vector<Canonical> operands_;
  mutable std::vector<double> weights_;

  // Trial undo state.
  bool trial_active_ = false;
  /// Set when a full pass ran during the trial: the undo log no longer
  /// reaches back to the pre-trial arrivals, so rollback falls back to
  /// dropping the cache (still exact — the next query recomputes).
  mutable bool trial_lost_baseline_ = false;
  mutable std::vector<ArrivalUndo> arrival_undo_;
  mutable std::vector<LoadUndo> load_undo_;
  mutable std::vector<char> touched_;  ///< bit 1: arrival logged; 2: load
  mutable std::vector<GateId> touched_list_;
  mutable std::vector<GateId> trial_pending_;   ///< pending_ at begin_trial
  mutable Canonical trial_out_max_;
  mutable std::vector<double> trial_sink_weights_;
  mutable bool trial_primed_ = false;
  /// Rollback restores arrivals/weights bitwise, so criticality computed
  /// before the trial is still exact afterwards — unless the criticality
  /// array itself was overwritten by an analyze during the trial.
  mutable bool trial_crit_primed_ = false;
  mutable bool trial_crit_overwritten_ = false;
};

}  // namespace statleak
