/// \file ssta.hpp
/// \brief Block-based statistical static timing analysis.
///
/// Forward PERT traversal propagating canonical forms: at each gate, the
/// fanin arrivals are combined with iterated Clark MAX (recording per-fanin
/// "win" probabilities), then the gate's own canonical delay is added. The
/// circuit delay is the Clark MAX over all primary outputs. A backward pass
/// turns the recorded win probabilities into per-gate criticality — the
/// probability mass of critical paths through each gate — which the
/// statistical optimizer uses to price timing cost.

#pragma once

#include <span>
#include <vector>

#include "cells/library.hpp"
#include "netlist/circuit.hpp"
#include "obs/registry.hpp"
#include "ssta/canonical.hpp"
#include "sta/loads.hpp"
#include "tech/variation.hpp"

namespace statleak {

/// Result of one SSTA pass.
struct SstaResult {
  std::vector<Canonical> arrival;  ///< per gate
  Canonical circuit_delay;         ///< max over primary outputs
  std::vector<double> criticality; ///< per gate, in [0, 1]; sums to ~1 per cut

  /// Timing yield P(D <= t_max) under the Gaussian circuit-delay model.
  double yield(double t_max_ps) const { return circuit_delay.cdf(t_max_ps); }
  /// Delay at the given yield (quantile of the circuit delay).
  double delay_at_yield_ps(double eta) const {
    return circuit_delay.quantile(eta);
  }
};

/// SSTA engine. Holds references; circuit, library and variation model must
/// outlive it. Shares the LoadCache pattern of StaEngine: call on_resize()
/// after a gate size change.
class SstaEngine {
 public:
  SstaEngine(const Circuit& circuit, const CellLibrary& lib,
             const VariationModel& var);

  void on_resize(GateId id) { loads_.on_resize(id); }
  void rebuild_loads() { loads_.rebuild(); }
  const LoadCache& loads() const { return loads_; }

  /// Attaches an observability registry (nullptr detaches). The engine
  /// counts its passes ("ssta.analyze_passes", "ssta.forward_passes");
  /// observation never changes any computed value.
  void attach_observer(obs::Registry* registry) { obs_ = registry; }

  /// Canonical delay of one gate under the variation model.
  Canonical gate_delay(GateId id) const;

  /// Full analysis with criticality (two passes).
  SstaResult analyze() const;

  /// Forward-only analysis: circuit-delay canonical without per-gate
  /// criticality (cheaper; used in the optimizer's accept/reject tests).
  Canonical circuit_delay() const;

 private:
  const Circuit& circuit_;
  const CellLibrary& lib_;
  const VariationModel& var_;
  LoadCache loads_;
  obs::Registry* obs_ = nullptr;
};

}  // namespace statleak
