#include "ssta/ssta.hpp"

#include <cmath>
#include <utility>

#include "ssta/delay_model.hpp"
#include "util/error.hpp"

namespace statleak {

SstaEngine::SstaEngine(const Circuit& circuit, const CellLibrary& lib,
                       const VariationModel& var)
    : circuit_(circuit), lib_(lib), var_(var), loads_(circuit, lib) {
  var_.validate();
  const std::size_t n = circuit_.num_gates();
  state_.arrival.assign(n, Canonical{});
  state_.criticality.assign(n, 0.0);
  win_.assign(n, {});
  queued_.assign(n, 0);
  touched_.assign(n, 0);
  buckets_.assign(static_cast<std::size_t>(circuit_.depth()) + 1, {});
}

Canonical SstaEngine::gate_delay(GateId id) const {
  const Gate& g = circuit_.gate(id);
  return canonical_gate_delay(lib_, var_, g.kind, g.vth, g.size,
                              loads_.load_ff(id));
}

namespace {

/// Iterated Clark max over a set of canonicals, recording per-operand win
/// probabilities (shared chain: ssta/delay_model.hpp).
Canonical max_with_weights(std::span<const Canonical> operands,
                           std::vector<double>& weights) {
  STATLEAK_CHECK(!operands.empty(), "max of nothing");
  weights.assign(operands.size(), 0.0);
  return clark_max_chain(operands, weights.data());
}

bool same_canonical(const Canonical& a, const Canonical& b) {
  return a.mean == b.mean && a.gl == b.gl && a.gv == b.gv && a.loc == b.loc;
}

}  // namespace

// ------------------------------------------------------- notifications ----

void SstaEngine::mark_dirty(GateId id) {
  if (queued_[id] == 0) {
    queued_[id] = 1;
    pending_.push_back(id);
  }
}

void SstaEngine::on_resize(GateId id) {
  if (trial_active_) {
    // The resize is about to overwrite the fanin drivers' loads; save them
    // on first touch so rollback_trial() can restore.
    for (GateId driver : circuit_.gate(id).fanins) {
      if ((touched_[driver] & 2) == 0) {
        touched_[driver] = static_cast<char>(touched_[driver] | 2);
        touched_list_.push_back(driver);
        load_undo_.push_back({driver, loads_.load_ff(driver)});
      }
    }
  }
  loads_.on_resize(id);
  mark_dirty(id);
  for (GateId driver : circuit_.gate(id).fanins) mark_dirty(driver);
}

void SstaEngine::on_vth_change(GateId id) { mark_dirty(id); }

void SstaEngine::rebuild_loads() {
  STATLEAK_CHECK(!trial_active_, "rebuild_loads inside a trial");
  loads_.rebuild();
  clear_pending();
  primed_ = false;
  crit_primed_ = false;
}

void SstaEngine::clear_pending() const {
  for (GateId id : pending_) queued_[id] = 0;
  pending_.clear();
}

// --------------------------------------------------------------- trials ----

void SstaEngine::begin_trial() {
  STATLEAK_CHECK(!trial_active_, "trials do not nest");
  trial_active_ = true;
  trial_lost_baseline_ = false;
  trial_primed_ = primed_;
  trial_pending_ = pending_;
  trial_out_max_ = state_.circuit_delay;
  trial_sink_weights_ = sink_weights_;
  trial_crit_primed_ = crit_primed_;
  trial_crit_overwritten_ = false;
}

void SstaEngine::commit_trial() {
  STATLEAK_CHECK(trial_active_, "no trial to commit");
  trial_active_ = false;
  trial_lost_baseline_ = false;
  for (GateId id : touched_list_) touched_[id] = 0;
  touched_list_.clear();
  arrival_undo_.clear();
  load_undo_.clear();
  trial_pending_.clear();
}

void SstaEngine::rollback_trial() {
  STATLEAK_CHECK(trial_active_, "no trial to roll back");
  trial_active_ = false;
  for (const LoadUndo& u : load_undo_) loads_.restore_load(u.id, u.load_ff);
  if (trial_lost_baseline_) {
    // A full pass ran inside the trial; the arrival log does not reach back
    // to the pre-trial state. Drop the cache — the next query recomputes
    // from the (caller-restored) circuit, which is exact by construction.
    primed_ = false;
    crit_primed_ = false;
  } else {
    primed_ = trial_primed_;
    for (ArrivalUndo& u : arrival_undo_) {
      state_.arrival[u.id] = u.arrival;
      win_[u.id] = std::move(u.win);
    }
    state_.circuit_delay = trial_out_max_;
    sink_weights_ = std::move(trial_sink_weights_);
    // The restore is bitwise, so criticality computed before the trial is
    // still exact — keep it unless the array itself was overwritten by an
    // analyze during the trial.
    crit_primed_ = trial_crit_primed_ && !trial_crit_overwritten_;
  }
  clear_pending();
  for (GateId id : trial_pending_) {
    queued_[id] = 1;
    pending_.push_back(id);
  }
  for (GateId id : touched_list_) touched_[id] = 0;
  touched_list_.clear();
  arrival_undo_.clear();
  load_undo_.clear();
  trial_pending_.clear();
  trial_lost_baseline_ = false;
  trial_sink_weights_.clear();
}

void SstaEngine::log_arrival(GateId id) const {
  if (!trial_active_ || trial_lost_baseline_ || (touched_[id] & 1) != 0) {
    return;
  }
  touched_[id] = static_cast<char>(touched_[id] | 1);
  touched_list_.push_back(id);
  arrival_undo_.push_back({id, state_.arrival[id], std::move(win_[id])});
}

// ------------------------------------------------------------ retiming ----

bool SstaEngine::retime_gate(GateId id, bool& state_changed) const {
  const Gate& g = circuit_.gate(id);
  Canonical fresh;
  weights_.clear();
  if (g.kind != CellKind::kInput) {
    operands_.clear();
    for (GateId f : g.fanins) operands_.push_back(state_.arrival[f]);
    const Canonical in_max = max_with_weights(operands_, weights_);
    fresh = Canonical::sum(in_max, gate_delay(id));
  }
  const bool changed = !same_canonical(fresh, state_.arrival[id]);
  if (changed || weights_ != win_[id]) state_changed = true;
  log_arrival(id);
  state_.arrival[id] = fresh;
  win_[id] = weights_;
  return changed;
}

void SstaEngine::recompute_output_max() const {
  operands_.clear();
  for (GateId out : circuit_.outputs()) {
    operands_.push_back(state_.arrival[out]);
  }
  state_.circuit_delay = max_with_weights(operands_, sink_weights_);
}

void SstaEngine::full_pass() const {
  if (trial_active_) trial_lost_baseline_ = true;
  if (obs_ != nullptr) obs_->add("ssta.full_passes", 1.0);
  const std::size_t n = circuit_.num_gates();
  state_.arrival.assign(n, Canonical{});
  for (GateId id : circuit_.topo_order()) {
    const Gate& g = circuit_.gate(id);
    if (g.kind == CellKind::kInput) continue;  // arrival stays zero
    operands_.clear();
    for (GateId f : g.fanins) operands_.push_back(state_.arrival[f]);
    const Canonical in_max = max_with_weights(operands_, weights_);
    win_[id] = weights_;
    state_.arrival[id] = Canonical::sum(in_max, gate_delay(id));
  }
  recompute_output_max();
  clear_pending();
  primed_ = true;
  crit_primed_ = false;
}

void SstaEngine::flush() const {
  if (!primed_ || !incremental_) {
    full_pass();
    return;
  }
  if (pending_.empty()) return;
  if (obs_ != nullptr) obs_->add("ssta.incremental_passes", 1.0);

  // Levelized cone propagation: consume the dirty set in level order so a
  // gate is recomputed only after all of its recomputed fanins — the same
  // order a full forward pass would visit them.
  for (GateId id : pending_) {
    buckets_[static_cast<std::size_t>(circuit_.level(id))].push_back(id);
  }
  pending_.clear();

  std::int64_t retimed = 0;
  bool output_changed = false;
  bool state_changed = false;
  for (auto& bucket : buckets_) {
    // Fanouts enqueue into strictly higher levels, so indexed iteration is
    // safe while later buckets grow.
    for (std::size_t i = 0; i < bucket.size(); ++i) {
      const GateId id = bucket[i];
      queued_[id] = 0;
      ++retimed;
      // Bit-identical arrival: the cone stops here.
      if (!retime_gate(id, state_changed)) continue;
      if (circuit_.is_output(id)) output_changed = true;
      for (GateId fo : circuit_.fanouts(id)) {
        if (queued_[fo] == 0) {
          queued_[fo] = 1;
          buckets_[static_cast<std::size_t>(circuit_.level(fo))].push_back(
              fo);
        }
      }
    }
    bucket.clear();
  }

  if (output_changed) recompute_output_max();
  // Criticality depends only on arrivals, win weights and sink weights; a
  // flush that moved none of them bitwise leaves it exact.
  if (state_changed) crit_primed_ = false;
  if (obs_ != nullptr) obs_->add("ssta.cone_gates_retimed",
                                 static_cast<double>(retimed));
}

void SstaEngine::refresh_criticality() const {
  if (crit_primed_) return;
  if (trial_active_) trial_crit_overwritten_ = true;
  const std::size_t n = circuit_.num_gates();
  state_.criticality.assign(n, 0.0);
  for (std::size_t i = 0; i < circuit_.outputs().size(); ++i) {
    state_.criticality[circuit_.outputs()[i]] += sink_weights_[i];
  }
  const auto topo = circuit_.topo_order();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const GateId id = *it;
    const Gate& g = circuit_.gate(id);
    if (g.kind == CellKind::kInput || state_.criticality[id] == 0.0) continue;
    for (std::size_t pin = 0; pin < g.fanins.size(); ++pin) {
      state_.criticality[g.fanins[pin]] +=
          state_.criticality[id] * win_[id][pin];
    }
  }
  crit_primed_ = true;
}

// -------------------------------------------------------------- queries ----

const SstaResult& SstaEngine::analyze_ref() const {
  if (obs_ != nullptr) obs_->add("ssta.analyze_passes", 1.0);
  flush();
  refresh_criticality();
  return state_;
}

SstaResult SstaEngine::analyze() const { return analyze_ref(); }

Canonical SstaEngine::circuit_delay() const {
  if (obs_ != nullptr) obs_->add("ssta.forward_passes", 1.0);
  flush();
  return state_.circuit_delay;
}

}  // namespace statleak
