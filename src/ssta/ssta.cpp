#include "ssta/ssta.hpp"

#include <cmath>

#include "util/error.hpp"

namespace statleak {

SstaEngine::SstaEngine(const Circuit& circuit, const CellLibrary& lib,
                       const VariationModel& var)
    : circuit_(circuit), lib_(lib), var_(var), loads_(circuit, lib) {
  var_.validate();
}

Canonical SstaEngine::gate_delay(GateId id) const {
  const Gate& g = circuit_.gate(id);
  Canonical d;
  if (g.kind == CellKind::kInput) return d;
  const double d0 = lib_.delay_ps(g.kind, g.vth, g.size, loads_.load_ff(id));
  const auto& s = lib_.sensitivities(g.vth);
  d.mean = d0;
  d.gl = d0 * s.delay_sl_per_nm * var_.sigma_l_inter_nm;
  d.gv = d0 * s.delay_sv_per_v * var_.sigma_vth_inter_v;
  const double sigma_vth_intra =
      var_.sigma_vth_intra_for(lib_.area_um(g.kind, g.size));
  const double loc_l = d0 * s.delay_sl_per_nm * var_.sigma_l_intra_nm;
  const double loc_v = d0 * s.delay_sv_per_v * sigma_vth_intra;
  d.loc = std::sqrt(loc_l * loc_l + loc_v * loc_v);
  return d;
}

namespace {

/// Iterated Clark max over a set of canonicals, recording per-operand win
/// probabilities (approximate: sequential binary-max tightness products).
Canonical max_with_weights(std::span<const Canonical> operands,
                           std::vector<double>& weights) {
  STATLEAK_CHECK(!operands.empty(), "max of nothing");
  weights.assign(operands.size(), 0.0);
  Canonical running = operands[0];
  weights[0] = 1.0;
  for (std::size_t i = 1; i < operands.size(); ++i) {
    double tight = 1.0;
    running = Canonical::max(running, operands[i], &tight);
    for (std::size_t j = 0; j < i; ++j) weights[j] *= tight;
    weights[i] = 1.0 - tight;
  }
  return running;
}

}  // namespace

SstaResult SstaEngine::analyze() const {
  if (obs_ != nullptr) obs_->add("ssta.analyze_passes", 1.0);
  const std::size_t n = circuit_.num_gates();
  SstaResult r;
  r.arrival.assign(n, Canonical{});
  r.criticality.assign(n, 0.0);

  // Per-gate fanin win weights from the forward pass.
  std::vector<std::vector<double>> win(n);
  std::vector<Canonical> operands;
  std::vector<double> weights;

  for (GateId id : circuit_.topo_order()) {
    const Gate& g = circuit_.gate(id);
    if (g.kind == CellKind::kInput) continue;  // arrival stays zero
    operands.clear();
    for (GateId f : g.fanins) operands.push_back(r.arrival[f]);
    const Canonical in_max = max_with_weights(operands, weights);
    win[id] = weights;
    r.arrival[id] = Canonical::sum(in_max, gate_delay(id));
  }

  // Circuit delay: max over primary outputs, with sink win weights.
  operands.clear();
  for (GateId out : circuit_.outputs()) operands.push_back(r.arrival[out]);
  std::vector<double> sink_weights;
  r.circuit_delay = max_with_weights(operands, sink_weights);

  // Backward criticality.
  for (std::size_t i = 0; i < circuit_.outputs().size(); ++i) {
    r.criticality[circuit_.outputs()[i]] += sink_weights[i];
  }
  const auto topo = circuit_.topo_order();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const GateId id = *it;
    const Gate& g = circuit_.gate(id);
    if (g.kind == CellKind::kInput || r.criticality[id] == 0.0) continue;
    for (std::size_t pin = 0; pin < g.fanins.size(); ++pin) {
      r.criticality[g.fanins[pin]] += r.criticality[id] * win[id][pin];
    }
  }
  return r;
}

Canonical SstaEngine::circuit_delay() const {
  if (obs_ != nullptr) obs_->add("ssta.forward_passes", 1.0);
  const std::size_t n = circuit_.num_gates();
  std::vector<Canonical> arrival(n);
  for (GateId id : circuit_.topo_order()) {
    const Gate& g = circuit_.gate(id);
    if (g.kind == CellKind::kInput) continue;
    Canonical in_max = arrival[g.fanins[0]];
    for (std::size_t pin = 1; pin < g.fanins.size(); ++pin) {
      in_max = Canonical::max(in_max, arrival[g.fanins[pin]]);
    }
    arrival[id] = Canonical::sum(in_max, gate_delay(id));
  }
  Canonical out = arrival[circuit_.outputs()[0]];
  for (std::size_t i = 1; i < circuit_.outputs().size(); ++i) {
    out = Canonical::max(out, arrival[circuit_.outputs()[i]]);
  }
  return out;
}

}  // namespace statleak
