#include "ssta/flat_incremental.hpp"

#include <algorithm>

#include "ssta/delay_model.hpp"
#include "util/error.hpp"
#include "util/simd.hpp"

namespace statleak {

namespace {

bool same_canonical(const Canonical& a, const Canonical& b) {
  return a.mean == b.mean && a.gl == b.gl && a.gv == b.gv && a.loc == b.loc;
}

}  // namespace

FlatSstaEngine::FlatSstaEngine(const Circuit& circuit, const CellLibrary& lib,
                               const VariationModel& var)
    : circuit_(circuit), lib_(lib), var_(var), loads_(circuit, lib),
      flat_(FlatCircuit::build(circuit)) {
  var_.validate();
  const std::size_t n = circuit_.num_gates();
  const auto topo = circuit_.topo_order();
  topo_.assign(topo.begin(), topo.end());
  level_.resize(n);
  is_output_.assign(n, 0);
  std::uint32_t max_degree = 1;
  for (GateId id = 0; id < n; ++id) {
    level_[id] = circuit_.level(id);
    max_degree = std::max(
        max_degree, flat_.fanin_offset[id + 1] - flat_.fanin_offset[id]);
  }
  for (GateId out : flat_.outputs) is_output_[out] = 1;
  state_.arrival.assign(n, Canonical{});
  state_.criticality.assign(n, 0.0);
  win_.assign(flat_.fanin.size(), 0.0);
  own_delay_.assign(n, Canonical{});
  for (GateId id = 0; id < n; ++id) refresh_own_delay(id);
  queued_.assign(n, 0);
  touched_.assign(n, 0);
  buckets_.assign(static_cast<std::size_t>(flat_.depth) + 1, {});
  weights_scratch_.resize(max_degree);
  const std::size_t m = flat_.outputs.size();
  out_pos_.assign(n, 0);
  for (std::size_t i = 0; i < m; ++i) {
    out_pos_[flat_.outputs[i]] = static_cast<std::uint32_t>(i);
  }
  out_prefix_.assign(m, Canonical{});
  out_tight_.assign(m, 1.0);
  sink_weights_.assign(m, 0.0);
  trial_log_cap_ = n / 8 + 1024;
}

Canonical FlatSstaEngine::gate_delay(GateId id) const {
  const Gate& g = circuit_.gate(id);
  return canonical_gate_delay(lib_, var_, g.kind, g.vth, g.size,
                              loads_.load_ff(id));
}

void FlatSstaEngine::refresh_own_delay(GateId id) const {
  own_delay_[id] = gate_delay(id);
}

void FlatSstaEngine::log_own_delay(GateId id) const {
  if ((touched_[id] & 4) != 0) return;
  touched_[id] = static_cast<char>(touched_[id] | 4);
  touched_list_.push_back(id);
  delay_undo_.push_back({id, own_delay_[id]});
}

// ------------------------------------------------------- notifications ----

void FlatSstaEngine::mark_dirty(GateId id) {
  if (queued_[id] == 0) {
    queued_[id] = 1;
    pending_.push_back(id);
  }
}

void FlatSstaEngine::on_resize(GateId id) {
  const auto drivers = flat_.fanins_of(id);
  if (trial_active_) {
    for (GateId driver : drivers) {
      if ((touched_[driver] & 2) == 0) {
        touched_[driver] = static_cast<char>(touched_[driver] | 2);
        touched_list_.push_back(driver);
        load_undo_.push_back({driver, loads_.load_ff(driver)});
      }
    }
    log_own_delay(id);
    for (GateId driver : drivers) log_own_delay(driver);
  }
  loads_.on_resize(id);
  refresh_own_delay(id);
  for (GateId driver : drivers) refresh_own_delay(driver);
  mark_dirty(id);
  for (GateId driver : drivers) mark_dirty(driver);
}

void FlatSstaEngine::on_vth_change(GateId id) {
  if (trial_active_) log_own_delay(id);
  refresh_own_delay(id);
  mark_dirty(id);
}

void FlatSstaEngine::rebuild_loads() {
  STATLEAK_CHECK(!trial_active_, "rebuild_loads inside a trial");
  loads_.rebuild();
  for (GateId id = 0; id < circuit_.num_gates(); ++id) refresh_own_delay(id);
  clear_pending();
  primed_ = false;
  crit_primed_ = false;
}

void FlatSstaEngine::clear_pending() const {
  for (GateId id : pending_) queued_[id] = 0;
  pending_.clear();
}

// --------------------------------------------------------------- trials ----

void FlatSstaEngine::begin_trial() {
  STATLEAK_CHECK(!trial_active_, "trials do not nest");
  trial_active_ = true;
  trial_lost_baseline_ = false;
  trial_primed_ = primed_;
  trial_pending_ = pending_;
  trial_out_max_ = state_.circuit_delay;
  trial_sink_weights_ = sink_weights_;
  trial_crit_primed_ = crit_primed_;
  trial_crit_overwritten_ = false;
  trial_chain_saved_ = false;
  trial_out_dirty_min_ = out_dirty_min_;
  trial_out_dirty_max_ = out_dirty_max_;
  trial_weights_stale_ = weights_stale_;
}

void FlatSstaEngine::commit_trial() {
  STATLEAK_CHECK(trial_active_, "no trial to commit");
  trial_active_ = false;
  trial_lost_baseline_ = false;
  trial_chain_saved_ = false;
  for (GateId id : touched_list_) touched_[id] = 0;
  touched_list_.clear();
  arrival_undo_.clear();
  win_undo_.clear();
  load_undo_.clear();
  delay_undo_.clear();
  trial_pending_.clear();
}

void FlatSstaEngine::rollback_trial() {
  STATLEAK_CHECK(trial_active_, "no trial to roll back");
  trial_active_ = false;
  for (const LoadUndo& u : load_undo_) loads_.restore_load(u.id, u.load_ff);
  // Own delays are cached eagerly at notification time, so they are
  // restored regardless of whether a full pass ran during the trial (the
  // next full pass reuses the cache; it must hold pre-trial bits).
  for (const DelayUndo& u : delay_undo_) own_delay_[u.id] = u.delay;
  if (trial_lost_baseline_) {
    // A full pass ran inside the trial; the arrival log does not reach back
    // to the pre-trial state. Drop the cache — the next query recomputes
    // from the (caller-restored) circuit, which is exact by construction.
    primed_ = false;
    crit_primed_ = false;
  } else {
    primed_ = trial_primed_;
    for (const ArrivalUndo& u : arrival_undo_) {
      state_.arrival[u.id] = u.arrival;
      const std::uint32_t off = flat_.fanin_offset[u.id];
      const std::uint32_t len = flat_.fanin_offset[u.id + 1] - off;
      std::copy_n(win_undo_.begin() + u.win_off, len, win_.begin() + off);
    }
    state_.circuit_delay = trial_out_max_;
    sink_weights_ = std::move(trial_sink_weights_);
    // Output chain: if a replay ran during the trial, the prefix and
    // tightness arrays were snapshotted just before the first overwrite —
    // swap the pre-trial bits back. Otherwise the arrays were never
    // touched, and restoring the arrivals above already re-validated them.
    // The dirty window and lazy-weights flag roll back unconditionally.
    if (trial_chain_saved_) {
      std::swap(out_prefix_, trial_out_prefix_);
      std::swap(out_tight_, trial_out_tight_);
    }
    out_dirty_min_ = trial_out_dirty_min_;
    out_dirty_max_ = trial_out_dirty_max_;
    weights_stale_ = trial_weights_stale_;
    // The restore is bitwise, so criticality computed before the trial is
    // still exact — keep it unless the array itself was overwritten by an
    // analyze during the trial.
    crit_primed_ = trial_crit_primed_ && !trial_crit_overwritten_;
  }
  clear_pending();
  for (GateId id : trial_pending_) {
    queued_[id] = 1;
    pending_.push_back(id);
  }
  for (GateId id : touched_list_) touched_[id] = 0;
  touched_list_.clear();
  arrival_undo_.clear();
  win_undo_.clear();
  load_undo_.clear();
  delay_undo_.clear();
  trial_pending_.clear();
  trial_lost_baseline_ = false;
  trial_chain_saved_ = false;
  trial_sink_weights_.clear();
}

void FlatSstaEngine::log_arrival(GateId id) const {
  if (!trial_active_ || trial_lost_baseline_ || (touched_[id] & 1) != 0) {
    return;
  }
  // A cone past the cap covers a constant fraction of the circuit: give up
  // on entry-by-entry restore (a rollback reprimes with a full pass, same
  // bits) rather than keep paying the log tax on a trial that will most
  // likely commit anyway. Arrivals logged so far are simply ignored by the
  // lost-baseline rollback path.
  if (arrival_undo_.size() >= trial_log_cap_) {
    trial_lost_baseline_ = true;
    return;
  }
  touched_[id] = static_cast<char>(touched_[id] | 1);
  touched_list_.push_back(id);
  arrival_undo_.push_back(
      {id, state_.arrival[id], static_cast<std::uint32_t>(win_undo_.size())});
  const std::uint32_t off = flat_.fanin_offset[id];
  const std::uint32_t end = flat_.fanin_offset[id + 1];
  win_undo_.insert(win_undo_.end(), win_.begin() + off, win_.begin() + end);
}

// ------------------------------------------------------------ retiming ----

bool FlatSstaEngine::retime_gate(GateId id, bool& state_changed) const {
  // An input's arrival is the all-zero canonical forever: retiming one can
  // never change state, so the cone stops immediately (bit-equivalent to
  // folding nothing and storing the same zero back).
  if (flat_.is_input[id]) return false;
  const std::uint32_t off = flat_.fanin_offset[id];
  const std::uint32_t deg = flat_.fanin_offset[id + 1] - off;
  STATLEAK_CHECK(deg > 0, "max of nothing");
  const Canonical* STATLEAK_RESTRICT arr = state_.arrival.data();
  const GateId* STATLEAK_RESTRICT fin = flat_.fanin.data() + off;
  double* STATLEAK_RESTRICT w = weights_scratch_.data();
  Canonical fresh;
  if (deg == 2) {
    // Dominant shape in mapped logic: a single saturating binary max, no
    // operand gather. The chain's weight algebra collapses to
    // fl(1.0 * tight) == tight and fl(1.0 - tight).
    double tight = 1.0;
    const Canonical in_max =
        canonical_max_saturating(arr[fin[0]], arr[fin[1]], &tight);
    fresh = Canonical::sum(in_max, own_delay_[id]);
    w[0] = tight;
    w[1] = 1.0 - tight;
  } else if (deg == 1) {
    fresh = Canonical::sum(arr[fin[0]], own_delay_[id]);
    w[0] = 1.0;
  } else {
    operands_.clear();
    for (std::uint32_t k = 0; k < deg; ++k) {
      operands_.push_back(arr[fin[k]]);
    }
    const Canonical in_max = clark_max_chain_saturating(operands_, w);
    fresh = Canonical::sum(in_max, own_delay_[id]);
  }
  const bool changed = !same_canonical(fresh, state_.arrival[id]);
  bool weights_changed = false;
  for (std::uint32_t k = 0; k < deg; ++k) {
    if (w[k] != win_[off + k]) {
      weights_changed = true;
      break;
    }
  }
  // Nothing moved: skip the undo log and the (bit-identical) writeback.
  if (!changed && !weights_changed) return false;
  state_changed = true;
  log_arrival(id);
  state_.arrival[id] = fresh;
  for (std::uint32_t k = 0; k < deg; ++k) win_[off + k] = w[k];
  return changed;
}

void FlatSstaEngine::replay_output_chain() const {
  if (out_dirty_min_ > out_dirty_max_) return;  // nothing pending
  const std::size_t m = flat_.outputs.size();
  if (trial_active_ && !trial_lost_baseline_ && !trial_chain_saved_) {
    trial_out_prefix_ = out_prefix_;
    trial_out_tight_ = out_tight_;
    trial_chain_saved_ = true;
  }
  const std::uint32_t last_dirty = out_dirty_max_;
  std::uint32_t i = out_dirty_min_;
  if (i == 0) {
    out_prefix_[0] = state_.arrival[flat_.outputs[0]];
    i = 1;
  }
  for (; i < m; ++i) {
    double tight = 1.0;
    const Canonical next = canonical_max_saturating(
        out_prefix_[i - 1], state_.arrival[flat_.outputs[i]], &tight);
    // Past the dirty window only the running prefix can differ; once it
    // re-converges bitwise (tightness included) the cached suffix is exact.
    if (i > last_dirty && tight == out_tight_[i] &&
        same_canonical(next, out_prefix_[i])) {
      break;
    }
    out_prefix_[i] = next;
    out_tight_[i] = tight;
  }
  state_.circuit_delay = out_prefix_[m - 1];
  weights_stale_ = true;
  out_dirty_min_ = kNoDirty;
  out_dirty_max_ = 0;
}

void FlatSstaEngine::refresh_sink_weights() const {
  if (!weights_stale_) return;
  // The scalar chain builds weights by repeated rescaling: after step i,
  // weights[j < i] have been multiplied by tight_i in increasing-j order
  // and weights[i] = 1.0 - tight_i. Re-running that recurrence from the
  // cached per-step tightness reproduces every bit; rows with tightness
  // exactly 1.0 are identity rescales (x * 1.0 == x) and are skipped.
  const std::size_t m = flat_.outputs.size();
  double* STATLEAK_RESTRICT w = sink_weights_.data();
  w[0] = 1.0;
  for (std::size_t i = 1; i < m; ++i) {
    const double tight = out_tight_[i];
    if (tight != 1.0) {
      STATLEAK_VEC_LOOP
      for (std::size_t j = 0; j < i; ++j) w[j] *= tight;
    }
    w[i] = 1.0 - tight;
  }
  weights_stale_ = false;
}

void FlatSstaEngine::full_pass() const {
  if (trial_active_) trial_lost_baseline_ = true;
  if (obs_ != nullptr) obs_->add("ssta.flat_full_passes", 1.0);
  const std::size_t n = circuit_.num_gates();
  state_.arrival.assign(n, Canonical{});
  for (GateId id : topo_) {
    if (flat_.is_input[id]) continue;
    const std::uint32_t off = flat_.fanin_offset[id];
    const std::uint32_t deg = flat_.fanin_offset[id + 1] - off;
    STATLEAK_CHECK(deg > 0, "max of nothing");
    operands_.clear();
    for (std::uint32_t k = 0; k < deg; ++k) {
      operands_.push_back(state_.arrival[flat_.fanin[off + k]]);
    }
    const Canonical in_max =
        clark_max_chain_saturating(operands_, win_.data() + off);
    state_.arrival[id] = Canonical::sum(in_max, own_delay_[id]);
  }
  out_dirty_min_ = 0;
  out_dirty_max_ = static_cast<std::uint32_t>(flat_.outputs.size()) - 1;
  replay_output_chain();
  clear_pending();
  primed_ = true;
  crit_primed_ = false;
}

void FlatSstaEngine::flush() const {
  if (!primed_ || !incremental_) {
    full_pass();
    return;
  }
  if (pending_.empty()) return;
  if (obs_ != nullptr) obs_->add("ssta.flat_incremental_passes", 1.0);

  // Levelized cone propagation, same visit discipline as the scalar engine:
  // a gate is recomputed only after all of its recomputed fanins.
  for (GateId id : pending_) {
    buckets_[static_cast<std::size_t>(level_[id])].push_back(id);
  }
  pending_.clear();

  std::int64_t retimed = 0;
  bool state_changed = false;
  for (auto& bucket : buckets_) {
    // Fanouts enqueue into strictly higher levels, so indexed iteration is
    // safe while later buckets grow.
    for (std::size_t i = 0; i < bucket.size(); ++i) {
      const GateId id = bucket[i];
      queued_[id] = 0;
      ++retimed;
      // Bit-identical arrival: the cone stops here.
      if (!retime_gate(id, state_changed)) continue;
      if (is_output_[id] != 0) {
        out_dirty_min_ = std::min(out_dirty_min_, out_pos_[id]);
        out_dirty_max_ = std::max(out_dirty_max_, out_pos_[id]);
      }
      for (GateId fo : flat_.fanouts_of(id)) {
        if (queued_[fo] == 0) {
          queued_[fo] = 1;
          buckets_[static_cast<std::size_t>(level_[fo])].push_back(fo);
        }
      }
    }
    bucket.clear();
  }

  replay_output_chain();
  if (state_changed) crit_primed_ = false;
  if (obs_ != nullptr) obs_->add("ssta.flat_cone_gates_retimed",
                                 static_cast<double>(retimed));
}

void FlatSstaEngine::refresh_criticality() const {
  if (crit_primed_) return;
  refresh_sink_weights();
  if (trial_active_) trial_crit_overwritten_ = true;
  const std::size_t n = circuit_.num_gates();
  state_.criticality.assign(n, 0.0);
  for (std::size_t i = 0; i < flat_.outputs.size(); ++i) {
    state_.criticality[flat_.outputs[i]] += sink_weights_[i];
  }
  for (auto it = topo_.rbegin(); it != topo_.rend(); ++it) {
    const GateId id = *it;
    if (flat_.is_input[id] || state_.criticality[id] == 0.0) continue;
    const std::uint32_t off = flat_.fanin_offset[id];
    const std::uint32_t deg = flat_.fanin_offset[id + 1] - off;
    const double crit = state_.criticality[id];
    const double* STATLEAK_RESTRICT w = win_.data() + off;
    const GateId* STATLEAK_RESTRICT f = flat_.fanin.data() + off;
    for (std::uint32_t pin = 0; pin < deg; ++pin) {
      state_.criticality[f[pin]] += crit * w[pin];
    }
  }
  crit_primed_ = true;
}

// -------------------------------------------------------------- queries ----

const SstaResult& FlatSstaEngine::analyze_ref() const {
  if (obs_ != nullptr) obs_->add("ssta.analyze_passes", 1.0);
  flush();
  refresh_criticality();
  return state_;
}

SstaResult FlatSstaEngine::analyze() const { return analyze_ref(); }

Canonical FlatSstaEngine::circuit_delay() const {
  if (obs_ != nullptr) obs_->add("ssta.forward_passes", 1.0);
  flush();
  return state_.circuit_delay;
}

}  // namespace statleak
