#include "ssta/canonical.hpp"

#include <algorithm>
#include <cmath>

#include "util/clark.hpp"
#include "util/normal.hpp"

namespace statleak {

double Canonical::sigma() const { return std::sqrt(variance()); }

double Canonical::cdf(double t) const {
  return normal_cdf(t, mean, sigma());
}

double Canonical::quantile(double p) const {
  return normal_quantile(p, mean, sigma());
}

Canonical Canonical::sum(const Canonical& a, const Canonical& b) {
  Canonical out;
  out.mean = a.mean + b.mean;
  out.gl = a.gl + b.gl;
  out.gv = a.gv + b.gv;
  out.loc = std::sqrt(a.loc * a.loc + b.loc * b.loc);
  return out;
}

Canonical Canonical::max(const Canonical& a, const Canonical& b,
                         double* tightness_out) {
  const double var_a = a.variance();
  const double var_b = b.variance();
  const double sig_a = std::sqrt(var_a);
  const double sig_b = std::sqrt(var_b);

  double rho = 0.0;
  if (sig_a > 0.0 && sig_b > 0.0) {
    rho = (a.gl * b.gl + a.gv * b.gv) / (sig_a * sig_b);
    rho = std::clamp(rho, -1.0, 1.0);
  }

  const ClarkMax cm = clark_max(a.mean, var_a, b.mean, var_b, rho);
  if (tightness_out != nullptr) *tightness_out = cm.tightness;

  Canonical out;
  out.mean = cm.mean;
  // Tightness-blend the global sensitivities, then assign whatever variance
  // remains to the independent term (clamped: Clark variance can fall below
  // the blended-global variance in near-degenerate cases).
  out.gl = cm.tightness * a.gl + (1.0 - cm.tightness) * b.gl;
  out.gv = cm.tightness * a.gv + (1.0 - cm.tightness) * b.gv;
  const double global_var = out.gl * out.gl + out.gv * out.gv;
  out.loc = std::sqrt(std::max(0.0, cm.variance - global_var));
  return out;
}

}  // namespace statleak
