/// \file circuit.hpp
/// \brief The gate-level netlist data model.
///
/// A Circuit is a DAG of gates. Primary inputs are pseudo-gates of kind
/// CellKind::kInput so every timing/leakage traversal sees a uniform graph.
/// Construction is two-phase: add gates (forward references allowed, as in
/// .bench files), then finalize() — which validates arities and acyclicity
/// and builds fanout lists, a topological order, and logic levels. After
/// finalization the topology is frozen; the optimizers mutate only the
/// per-gate implementation attributes (size, Vth).

#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "cells/cell_kind.hpp"
#include "tech/process.hpp"

namespace statleak {

using GateId = std::uint32_t;
inline constexpr GateId kInvalidGate = std::numeric_limits<GateId>::max();

/// One gate instance. `fanins` are pin-ordered.
struct Gate {
  std::string name;
  CellKind kind = CellKind::kInput;
  Vth vth = Vth::kLow;
  double size = 1.0;
  std::vector<GateId> fanins;
};

class Circuit {
 public:
  Circuit() = default;
  explicit Circuit(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Adds a primary input. Names must be unique across all gates.
  GateId add_input(const std::string& name);

  /// Adds a logic gate. Fanins may reference gates not yet added — use
  /// placeholder ids obtained from `id_for_name` and patch later, or simply
  /// add gates in any order using name-based construction in BenchReader.
  GateId add_gate(const std::string& name, CellKind kind,
                  std::vector<GateId> fanins);

  /// Marks a gate as a primary output (idempotent).
  void mark_output(GateId id);

  /// Validates and freezes the topology. Throws statleak::Error on arity
  /// mismatch, dangling fanin, cycles, or zero outputs.
  void finalize();
  bool finalized() const { return finalized_; }

  // --- structure access (most require finalized()) -----------------------
  std::size_t num_gates() const { return gates_.size(); }
  /// Number of logic cells (gates excluding primary-input pseudo-gates).
  std::size_t num_cells() const { return gates_.size() - inputs_.size(); }
  const Gate& gate(GateId id) const;
  Gate& gate(GateId id);
  std::span<const GateId> inputs() const { return inputs_; }
  std::span<const GateId> outputs() const { return outputs_; }
  bool is_output(GateId id) const;
  std::span<const GateId> fanouts(GateId id) const;
  /// Gates in topological order (fanins before fanouts), inputs first.
  std::span<const GateId> topo_order() const;
  /// Logic level of a gate: 0 for inputs, 1 + max(fanin levels) otherwise.
  int level(GateId id) const;
  /// Maximum logic level over all gates (circuit depth).
  int depth() const;

  /// Id of the gate with the given name, or kInvalidGate.
  GateId find(const std::string& name) const;

  // --- implementation attributes (mutable after finalize) ----------------
  void set_size(GateId id, double size);
  void set_vth(GateId id, Vth vth);

  /// Counts cells currently assigned to high Vth.
  std::size_t count_hvt() const;

 private:
  void require_finalized() const;

  std::string name_;
  std::vector<Gate> gates_;
  std::vector<GateId> inputs_;
  std::vector<GateId> outputs_;
  std::vector<char> is_output_;
  std::unordered_map<std::string, GateId> by_name_;

  bool finalized_ = false;
  std::vector<GateId> topo_;
  std::vector<int> level_;
  std::vector<std::vector<GateId>> fanouts_;
};

/// Evaluates the circuit on one input assignment. `input_values[i]` is the
/// value of circuit.inputs()[i]. Returns one value per gate, indexed by
/// GateId. Requires a finalized circuit.
std::vector<char> simulate(const Circuit& circuit,
                           std::span<const char> input_values);

/// Structural summary used by Table 1 of the experiment harness.
struct CircuitStats {
  std::size_t num_inputs = 0;
  std::size_t num_outputs = 0;
  std::size_t num_cells = 0;
  int depth = 0;
  double avg_fanout = 0.0;
};

CircuitStats circuit_stats(const Circuit& circuit);

}  // namespace statleak
