#include "netlist/impl_io.hpp"

#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>

#include "util/error.hpp"

namespace statleak {

std::size_t read_impl(std::istream& in, Circuit& circuit) {
  STATLEAK_CHECK(circuit.finalized(), "read_impl needs a finalized circuit");
  std::size_t updated = 0;
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream fields(line);
    std::string name;
    std::string vth_token;
    double size = 0.0;
    if (!(fields >> name)) continue;  // blank line
    if (!(fields >> vth_token >> size)) {
      throw Error("impl line " + std::to_string(line_no) +
                  ": expected '<gate> <LVT|HVT> <size>'");
    }
    const GateId id = circuit.find(name);
    if (id == kInvalidGate) {
      throw Error("impl line " + std::to_string(line_no) +
                  ": unknown gate '" + name + "'");
    }
    if (circuit.gate(id).kind == CellKind::kInput) {
      throw Error("impl line " + std::to_string(line_no) +
                  ": '" + name + "' is a primary input");
    }
    Vth vth;
    if (vth_token == "LVT") {
      vth = Vth::kLow;
    } else if (vth_token == "HVT") {
      vth = Vth::kHigh;
    } else {
      throw Error("impl line " + std::to_string(line_no) +
                  ": bad Vth class '" + vth_token + "' (want LVT or HVT)");
    }
    if (size <= 0.0) {
      throw Error("impl line " + std::to_string(line_no) +
                  ": size must be positive");
    }
    circuit.set_vth(id, vth);
    circuit.set_size(id, size);
    ++updated;
  }
  return updated;
}

std::size_t read_impl_file(const std::string& path, Circuit& circuit) {
  std::ifstream in(path);
  STATLEAK_CHECK(in.good(), "cannot open impl file: " + path);
  return read_impl(in, circuit);
}

void write_impl(std::ostream& out, const Circuit& circuit) {
  STATLEAK_CHECK(circuit.finalized(), "write_impl needs a finalized circuit");
  out << "# statleak implementation for " << circuit.name()
      << " — <gate> <vth> <size>\n";
  // Sizes must round-trip exactly: an implementation is a contract.
  out << std::setprecision(std::numeric_limits<double>::max_digits10);
  for (GateId id : circuit.topo_order()) {
    const Gate& g = circuit.gate(id);
    if (g.kind == CellKind::kInput) continue;
    out << g.name << ' ' << to_string(g.vth) << ' ' << g.size << '\n';
  }
}

void write_impl_file(const std::string& path, const Circuit& circuit) {
  std::ofstream out(path);
  STATLEAK_CHECK(out.good(), "cannot open impl file for writing: " + path);
  write_impl(out, circuit);
}

}  // namespace statleak
