#include "netlist/impl_io.hpp"

#include <charconv>
#include <cmath>
#include <fstream>
#include <iomanip>
#include <limits>
#include <vector>

#include "util/error.hpp"

namespace statleak {

namespace {

/// Every diagnostic carries line AND column (both 1-based) so a bad token
/// in a machine-generated implementation file is findable without counting
/// fields by hand.
[[noreturn]] void impl_error(int line, std::size_t col,
                             const std::string& msg) {
  throw Error("impl parse error at line " + std::to_string(line) +
              ", column " + std::to_string(col) + ": " + msg);
}

struct Token {
  std::string text;
  std::size_t col = 0;  ///< 1-based column of the token's first character
};

std::vector<Token> tokenize(const std::string& line) {
  std::vector<Token> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    if (line[i] == ' ' || line[i] == '\t' || line[i] == '\r') {
      ++i;
      continue;
    }
    const std::size_t start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t' &&
           line[i] != '\r') {
      ++i;
    }
    tokens.push_back(Token{line.substr(start, i - start), start + 1});
  }
  return tokens;
}

}  // namespace

std::size_t read_impl(std::istream& in, Circuit& circuit) {
  STATLEAK_CHECK(circuit.finalized(), "read_impl needs a finalized circuit");
  std::size_t updated = 0;
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    const std::vector<Token> tok = tokenize(line);
    if (tok.empty()) continue;  // blank or comment-only line
    if (tok.size() < 3) {
      impl_error(line_no, line.size() + 1,
                 "expected '<gate> <LVT|HVT> <size>', got " +
                     std::to_string(tok.size()) + " field(s)");
    }
    if (tok.size() > 3) {
      impl_error(line_no, tok[3].col,
                 "unexpected trailing field '" + tok[3].text + "'");
    }
    const Token& name = tok[0];
    const Token& vth_token = tok[1];
    const Token& size_token = tok[2];

    const GateId id = circuit.find(name.text);
    if (id == kInvalidGate) {
      impl_error(line_no, name.col, "unknown gate '" + name.text + "'");
    }
    if (circuit.gate(id).kind == CellKind::kInput) {
      impl_error(line_no, name.col,
                 "'" + name.text + "' is a primary input");
    }
    Vth vth;
    if (vth_token.text == "LVT") {
      vth = Vth::kLow;
    } else if (vth_token.text == "HVT") {
      vth = Vth::kHigh;
    } else {
      impl_error(line_no, vth_token.col,
                 "bad Vth class '" + vth_token.text + "' (want LVT or HVT)");
    }
    double size = 0.0;
    const auto res =
        std::from_chars(size_token.text.data(),
                        size_token.text.data() + size_token.text.size(), size);
    if (res.ec != std::errc() ||
        res.ptr != size_token.text.data() + size_token.text.size()) {
      impl_error(line_no, size_token.col,
                 "malformed size '" + size_token.text + "'");
    }
    if (!(size > 0.0) || !std::isfinite(size)) {
      impl_error(line_no, size_token.col,
                 "size must be positive and finite, got '" + size_token.text +
                     "'");
    }
    circuit.set_vth(id, vth);
    circuit.set_size(id, size);
    ++updated;
  }
  return updated;
}

std::size_t read_impl_file(const std::string& path, Circuit& circuit) {
  std::ifstream in(path);
  STATLEAK_CHECK(in.good(), "cannot open impl file: " + path);
  return read_impl(in, circuit);
}

void write_impl(std::ostream& out, const Circuit& circuit) {
  STATLEAK_CHECK(circuit.finalized(), "write_impl needs a finalized circuit");
  out << "# statleak implementation for " << circuit.name()
      << " — <gate> <vth> <size>\n";
  // Sizes must round-trip exactly: an implementation is a contract.
  out << std::setprecision(std::numeric_limits<double>::max_digits10);
  for (GateId id : circuit.topo_order()) {
    const Gate& g = circuit.gate(id);
    if (g.kind == CellKind::kInput) continue;
    out << g.name << ' ' << to_string(g.vth) << ' ' << g.size << '\n';
  }
}

void write_impl_file(const std::string& path, const Circuit& circuit) {
  std::ofstream out(path);
  STATLEAK_CHECK(out.good(), "cannot open impl file for writing: " + path);
  write_impl(out, circuit);
}

}  // namespace statleak
