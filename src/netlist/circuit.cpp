#include "netlist/circuit.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace statleak {

GateId Circuit::add_input(const std::string& name) {
  return add_gate(name, CellKind::kInput, {});
}

GateId Circuit::add_gate(const std::string& name, CellKind kind,
                         std::vector<GateId> fanins) {
  STATLEAK_CHECK(!finalized_, "cannot add gates after finalize");
  STATLEAK_CHECK(!name.empty(), "gate name must be non-empty");
  STATLEAK_CHECK(by_name_.find(name) == by_name_.end(),
                 "duplicate gate name: " + name);
  const auto id = static_cast<GateId>(gates_.size());
  Gate g;
  g.name = name;
  g.kind = kind;
  g.fanins = std::move(fanins);
  gates_.push_back(std::move(g));
  by_name_.emplace(name, id);
  if (kind == CellKind::kInput) inputs_.push_back(id);
  return id;
}

void Circuit::mark_output(GateId id) {
  STATLEAK_CHECK(id < gates_.size(), "output id out of range");
  if (is_output_.size() < gates_.size()) is_output_.resize(gates_.size(), 0);
  if (!is_output_[id]) {
    is_output_[id] = 1;
    outputs_.push_back(id);
  }
}

void Circuit::finalize() {
  STATLEAK_CHECK(!finalized_, "finalize called twice");
  STATLEAK_CHECK(!outputs_.empty(), "circuit has no primary outputs");
  is_output_.resize(gates_.size(), 0);

  // Arity and dangling-fanin validation.
  for (const Gate& g : gates_) {
    const int want = cell_info(g.kind).fanin;
    STATLEAK_CHECK(static_cast<int>(g.fanins.size()) == want,
                   "gate '" + g.name + "' (" +
                       std::string(to_string(g.kind)) + ") has " +
                       std::to_string(g.fanins.size()) + " fanins, expected " +
                       std::to_string(want));
    for (GateId f : g.fanins) {
      STATLEAK_CHECK(f < gates_.size(),
                     "gate '" + g.name + "' references undefined fanin");
    }
  }

  // Fanout lists.
  fanouts_.assign(gates_.size(), {});
  for (GateId id = 0; id < gates_.size(); ++id) {
    for (GateId f : gates_[id].fanins) fanouts_[f].push_back(id);
  }

  // Kahn topological sort; detects cycles.
  std::vector<int> pending(gates_.size());
  topo_.clear();
  topo_.reserve(gates_.size());
  for (GateId id = 0; id < gates_.size(); ++id) {
    pending[id] = static_cast<int>(gates_[id].fanins.size());
    if (pending[id] == 0) topo_.push_back(id);
  }
  for (std::size_t head = 0; head < topo_.size(); ++head) {
    for (GateId out : fanouts_[topo_[head]]) {
      if (--pending[out] == 0) topo_.push_back(out);
    }
  }
  STATLEAK_CHECK(topo_.size() == gates_.size(),
                 "circuit contains a combinational cycle");

  // Logic levels.
  level_.assign(gates_.size(), 0);
  for (GateId id : topo_) {
    int lvl = 0;
    for (GateId f : gates_[id].fanins) lvl = std::max(lvl, level_[f] + 1);
    level_[id] = gates_[id].fanins.empty() ? 0 : lvl;
  }

  finalized_ = true;
}

void Circuit::require_finalized() const {
  STATLEAK_CHECK(finalized_, "circuit must be finalized first");
}

const Gate& Circuit::gate(GateId id) const {
  STATLEAK_CHECK(id < gates_.size(), "gate id out of range");
  return gates_[id];
}

Gate& Circuit::gate(GateId id) {
  STATLEAK_CHECK(id < gates_.size(), "gate id out of range");
  return gates_[id];
}

bool Circuit::is_output(GateId id) const {
  STATLEAK_CHECK(id < gates_.size(), "gate id out of range");
  return id < is_output_.size() && is_output_[id] != 0;
}

std::span<const GateId> Circuit::fanouts(GateId id) const {
  require_finalized();
  STATLEAK_CHECK(id < gates_.size(), "gate id out of range");
  return fanouts_[id];
}

std::span<const GateId> Circuit::topo_order() const {
  require_finalized();
  return topo_;
}

int Circuit::level(GateId id) const {
  require_finalized();
  STATLEAK_CHECK(id < gates_.size(), "gate id out of range");
  return level_[id];
}

int Circuit::depth() const {
  require_finalized();
  int d = 0;
  for (int lvl : level_) d = std::max(d, lvl);
  return d;
}

GateId Circuit::find(const std::string& name) const {
  const auto it = by_name_.find(name);
  return it == by_name_.end() ? kInvalidGate : it->second;
}

void Circuit::set_size(GateId id, double size) {
  STATLEAK_CHECK(size > 0.0, "gate size must be positive");
  gate(id).size = size;
}

void Circuit::set_vth(GateId id, Vth vth) { gate(id).vth = vth; }

std::size_t Circuit::count_hvt() const {
  std::size_t n = 0;
  for (const Gate& g : gates_) {
    if (g.kind != CellKind::kInput && g.vth == Vth::kHigh) ++n;
  }
  return n;
}

std::vector<char> simulate(const Circuit& circuit,
                           std::span<const char> input_values) {
  STATLEAK_CHECK(circuit.finalized(), "simulate requires a finalized circuit");
  STATLEAK_CHECK(input_values.size() == circuit.inputs().size(),
                 "input vector size mismatch");
  std::vector<char> value(circuit.num_gates(), 0);
  for (std::size_t i = 0; i < circuit.inputs().size(); ++i) {
    value[circuit.inputs()[i]] = input_values[i] ? 1 : 0;
  }
  for (GateId id : circuit.topo_order()) {
    const Gate& g = circuit.gate(id);
    if (g.kind == CellKind::kInput) continue;
    std::uint32_t bits = 0;
    for (std::size_t pin = 0; pin < g.fanins.size(); ++pin) {
      if (value[g.fanins[pin]]) bits |= 1u << pin;
    }
    value[id] = evaluate(g.kind, bits) ? 1 : 0;
  }
  return value;
}

CircuitStats circuit_stats(const Circuit& circuit) {
  STATLEAK_CHECK(circuit.finalized(), "stats require a finalized circuit");
  CircuitStats s;
  s.num_inputs = circuit.inputs().size();
  s.num_outputs = circuit.outputs().size();
  s.num_cells = circuit.num_cells();
  s.depth = circuit.depth();
  std::size_t edges = 0;
  std::size_t drivers = 0;
  for (GateId id = 0; id < circuit.num_gates(); ++id) {
    const auto fo = circuit.fanouts(id).size();
    if (fo > 0) {
      edges += fo;
      ++drivers;
    }
  }
  s.avg_fanout = drivers ? static_cast<double>(edges) / drivers : 0.0;
  return s;
}

}  // namespace statleak
