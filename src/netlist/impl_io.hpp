/// \file impl_io.hpp
/// \brief Reader/writer for implementation sidecar files (".impl").
///
/// A netlist (.bench) fixes the logic; the *implementation* — per-gate Vth
/// class and drive size — is what the optimizers produce. The sidecar
/// format makes optimization results persistent and the CLI pipeline
/// composable (optimize -> save; analyze <- load):
///
///   # comment
///   <gate-name>  <LVT|HVT>  <size>
///
/// Unlisted gates keep their current implementation; unknown gate names are
/// an error (catching netlist/implementation mismatches early).

#pragma once

#include <iosfwd>
#include <string>

#include "netlist/circuit.hpp"

namespace statleak {

/// Applies an implementation file to a finalized circuit.
/// Returns the number of gates updated.
std::size_t read_impl(std::istream& in, Circuit& circuit);
std::size_t read_impl_file(const std::string& path, Circuit& circuit);

/// Writes every logic cell's implementation.
void write_impl(std::ostream& out, const Circuit& circuit);
void write_impl_file(const std::string& path, const Circuit& circuit);

}  // namespace statleak
