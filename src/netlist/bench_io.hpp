/// \file bench_io.hpp
/// \brief Reader/writer for the ISCAS85 ".bench" netlist format.
///
/// Grammar accepted (case-insensitive operators, '#' comments):
///
///   INPUT(name)
///   OUTPUT(name)
///   name = OP(arg1, arg2, ...)      OP in {NOT, BUF, BUFF, AND, NAND, OR,
///                                          NOR, XOR, XNOR}
///
/// Gates may be referenced before they are defined (the format does not
/// order definitions). Operators whose arity exceeds the cell library's
/// native fanin (4 for NAND/NOR, 3 for AND/OR, 2 for XOR/XNOR) are
/// decomposed into balanced trees of library cells; the synthesized
/// intermediate gates get "<name>__tN" names. Sequential elements (DFF) are
/// rejected — statleak models combinational ISCAS85-class logic only.
///
/// The reader is hardened against malformed input: truncated files, cyclic
/// definitions, duplicate OUTPUT declarations, redefined signals and
/// operators with more than 1024 operands all raise a clean statleak::Error
/// (never a crash or unbounded allocation); see the fuzz corpus in
/// tests/bench_io_test.cpp.

#pragma once

#include <iosfwd>
#include <string>

#include "netlist/circuit.hpp"

namespace statleak {

/// Parses a .bench netlist from a stream. Returns a finalized circuit.
/// Throws statleak::Error with a line number on any syntax/semantic problem.
Circuit read_bench(std::istream& in, const std::string& circuit_name);

/// Parses a .bench netlist held in a string (convenience for tests and
/// embedded circuits).
Circuit read_bench_string(const std::string& text,
                          const std::string& circuit_name);

/// Reads a .bench file from disk.
Circuit read_bench_file(const std::string& path);

/// Serializes a circuit to .bench. Kinds the format lacks (AOI21, OAI21,
/// MUX2) are decomposed into native operators with "__w"-suffixed helper
/// nets, so the file round-trips to logically equivalent (not structurally
/// identical) circuits.
void write_bench(std::ostream& out, const Circuit& circuit);

/// Serializes to a string.
std::string write_bench_string(const Circuit& circuit);

}  // namespace statleak
