/// \file flat_circuit.hpp
/// \brief Frozen structure-of-arrays snapshot of a finalized Circuit.
///
/// The AoS Circuit/Gate model is convenient to build and mutate, but walking
/// it per Monte-Carlo sample chases a std::vector<GateId> allocation per
/// gate (the fanin list) and re-reads cold Gate fields (name strings sit
/// between the hot ones). FlatCircuit freezes one implementation point of a
/// circuit into contiguous arrays:
///
///   - CSR fanin and fanout adjacency (`fanin_offset`/`fanin`,
///     `fanout_offset`/`fanout`), fanins pin-ordered exactly as in the Gate,
///   - the topological order bucketed by logic level (`topo` is a
///     permutation of all gate ids; `level_offset[l] .. level_offset[l+1]`
///     delimits the gates of level l, and within a level the original
///     topo_order() relative order is preserved),
///   - per-gate implementation attributes (`kind`, `vth`, `size`) and flags
///     (`is_input`) in index-by-GateId arrays.
///
/// The snapshot is immutable by convention: it does not observe later
/// set_size/set_vth mutations of the source Circuit. The batched kernels
/// (BatchDelayKernel, BatchLeakageKernel) precompute per-gate model
/// constants on top of this topology, so rebuild the snapshot (cheap;
/// `flat.build_ns` counts it) whenever the implementation point changes.
///
/// Because topo is a topological order, iterating it in sequence evaluates
/// every gate after all of its fanins — level buckets additionally expose
/// independent gate sets, which the kernels do not currently need but the
/// invariants test pins so future wavefront schedulers can rely on them.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/circuit.hpp"

namespace statleak {

struct FlatCircuit {
  std::uint32_t num_gates = 0;

  // CSR fanin adjacency: fanins of gate g are
  // fanin[fanin_offset[g] .. fanin_offset[g + 1]), pin-ordered.
  std::vector<std::uint32_t> fanin_offset;
  std::vector<GateId> fanin;

  // CSR fanout adjacency, same layout, order matching Circuit::fanouts().
  std::vector<std::uint32_t> fanout_offset;
  std::vector<GateId> fanout;

  // Level-bucketed topological order: topo is a permutation of [0, num_gates);
  // level_offset has depth + 2 entries and level l occupies
  // topo[level_offset[l] .. level_offset[l + 1]).
  std::vector<GateId> topo;
  std::vector<std::uint32_t> level_offset;

  // Primary outputs (order matching Circuit::outputs()).
  std::vector<GateId> outputs;

  // Indexed by GateId.
  std::vector<char> is_input;
  std::vector<CellKind> kind;
  std::vector<Vth> vth;
  std::vector<double> size;

  int depth = 0;

  std::span<const GateId> fanins_of(GateId g) const {
    return {fanin.data() + fanin_offset[g], fanin.data() + fanin_offset[g + 1]};
  }
  std::span<const GateId> fanouts_of(GateId g) const {
    return {fanout.data() + fanout_offset[g],
            fanout.data() + fanout_offset[g + 1]};
  }
  std::span<const GateId> level_bucket(int l) const {
    return {topo.data() + level_offset[static_cast<std::size_t>(l)],
            topo.data() + level_offset[static_cast<std::size_t>(l) + 1]};
  }

  /// Snapshots a finalized circuit. Throws statleak::Error if the circuit
  /// is not finalized.
  static FlatCircuit build(const Circuit& circuit);
};

}  // namespace statleak
