#include "netlist/flat_circuit.hpp"

#include "util/error.hpp"

namespace statleak {

FlatCircuit FlatCircuit::build(const Circuit& circuit) {
  STATLEAK_CHECK(circuit.finalized(),
                 "FlatCircuit requires a finalized circuit");
  FlatCircuit flat;
  const auto n = static_cast<std::uint32_t>(circuit.num_gates());
  flat.num_gates = n;
  flat.depth = circuit.depth();

  // CSR fanins/fanouts: count, prefix-sum, fill (order preserved).
  flat.fanin_offset.resize(n + 1, 0);
  flat.fanout_offset.resize(n + 1, 0);
  for (GateId g = 0; g < n; ++g) {
    flat.fanin_offset[g + 1] =
        flat.fanin_offset[g] +
        static_cast<std::uint32_t>(circuit.gate(g).fanins.size());
    flat.fanout_offset[g + 1] =
        flat.fanout_offset[g] +
        static_cast<std::uint32_t>(circuit.fanouts(g).size());
  }
  flat.fanin.reserve(flat.fanin_offset[n]);
  flat.fanout.reserve(flat.fanout_offset[n]);
  for (GateId g = 0; g < n; ++g) {
    const Gate& gate = circuit.gate(g);
    flat.fanin.insert(flat.fanin.end(), gate.fanins.begin(),
                      gate.fanins.end());
    const auto fouts = circuit.fanouts(g);
    flat.fanout.insert(flat.fanout.end(), fouts.begin(), fouts.end());
  }

  // Level-bucketed topo order: a stable partition of topo_order() by level
  // keeps the original relative order within each bucket, and because
  // levels already respect the DAG (level(fanin) < level(gate)), the
  // concatenation of buckets is itself a valid topological order.
  const int depth = flat.depth;
  flat.level_offset.assign(static_cast<std::size_t>(depth) + 2, 0);
  for (GateId g = 0; g < n; ++g) {
    flat.level_offset[static_cast<std::size_t>(circuit.level(g)) + 1] += 1;
  }
  for (std::size_t l = 1; l < flat.level_offset.size(); ++l) {
    flat.level_offset[l] += flat.level_offset[l - 1];
  }
  flat.topo.resize(n);
  {
    std::vector<std::uint32_t> cursor(
        flat.level_offset.begin(), flat.level_offset.end() - 1);
    for (const GateId g : circuit.topo_order()) {
      flat.topo[cursor[static_cast<std::size_t>(circuit.level(g))]++] = g;
    }
  }

  const auto outs = circuit.outputs();
  flat.outputs.assign(outs.begin(), outs.end());

  flat.is_input.assign(n, 0);
  flat.kind.resize(n);
  flat.vth.resize(n);
  flat.size.resize(n);
  for (GateId g = 0; g < n; ++g) {
    const Gate& gate = circuit.gate(g);
    flat.is_input[g] = gate.kind == CellKind::kInput ? 1 : 0;
    flat.kind[g] = gate.kind;
    flat.vth[g] = gate.vth;
    flat.size[g] = gate.size;
  }
  return flat;
}

}  // namespace statleak
