#include "netlist/bench_io.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <set>
#include <sstream>
#include <unordered_map>

#include "util/error.hpp"

namespace statleak {

namespace {

std::string upper(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return s;
}

std::string strip(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

[[noreturn]] void parse_error(int line, const std::string& msg) {
  throw Error("bench parse error at line " + std::to_string(line) + ": " +
              msg);
}

/// Operand-count cap per definition. Real ISCAS-era netlists stay far below
/// this; anything above it is a corrupt or adversarial file, rejected with a
/// clean parse error before the tree decomposition allocates gates for it.
constexpr std::size_t kMaxBenchFanin = 1024;

struct Def {
  std::string name;
  std::string op;
  std::vector<std::string> args;
  int line = 0;
};

/// Second construction phase: turns parsed defs into gates, decomposing
/// operators wider than the library's native fanin into balanced trees.
class Builder {
 public:
  explicit Builder(const std::string& name) : circuit_(name) {}

  void add_input(const std::string& name) {
    ids_[name] = circuit_.add_input(name);
  }

  Circuit build(const std::vector<Def>& defs,
                const std::vector<std::string>& output_names) {
    // Gates may reference later definitions, so create first, patch after.
    for (const Def& def : defs) create(def);
    resolve_patches();
    for (const std::string& out : output_names) {
      const auto it = ids_.find(out);
      if (it == ids_.end()) {
        throw Error("bench: OUTPUT(" + out + ") is never defined");
      }
      circuit_.mark_output(it->second);
    }
    circuit_.finalize();
    return std::move(circuit_);
  }

 private:
  /// Creates the gate(s) for one definition, recording fanin names to be
  /// resolved once every gate exists.
  void create(const Def& def) {
    const std::string& op = def.op;
    const int arity = static_cast<int>(def.args.size());
    const auto exact = [&](int want) {
      if (arity != want) {
        parse_error(def.line,
                    op + " takes exactly " + std::to_string(want) + " input");
      }
    };
    const auto at_least = [&](int want) {
      if (arity < want) {
        parse_error(def.line, op + " needs at least " + std::to_string(want) +
                                  " inputs");
      }
    };

    if (op == "NOT" || op == "INV") {
      exact(1);
      make_gate(def.name, CellKind::kInv, def.args);
    } else if (op == "BUF" || op == "BUFF") {
      exact(1);
      make_gate(def.name, CellKind::kBuf, def.args);
    } else if (op == "NAND" || op == "NOR") {
      at_least(2);
      make_negated_reduction(def, op == "NAND");
    } else if (op == "AND" || op == "OR") {
      at_least(2);
      make_reduction(def, op == "AND");
    } else if (op == "XOR" || op == "XNOR") {
      at_least(2);
      make_xor_chain(def, op == "XNOR");
    } else if (op == "DFF") {
      parse_error(def.line,
                  "sequential element DFF not supported "
                  "(combinational circuits only)");
    } else {
      parse_error(def.line, "unknown operator '" + op + "'");
    }
  }

  /// AND/OR of any arity: balanced tree of 2/3-input cells; the tree root
  /// carries the user-visible name.
  void make_reduction(const Def& def, bool is_and) {
    const CellKind two = is_and ? CellKind::kAnd2 : CellKind::kOr2;
    const CellKind three = is_and ? CellKind::kAnd3 : CellKind::kOr3;
    std::vector<std::string> args = reduce_to(def, def.args, 3, two);
    make_gate(def.name, args.size() == 2 ? two : three, args);
  }

  /// NAND/NOR of any arity: pre-reduce with AND2/OR2 down to <= 4 operands,
  /// finish with one native inverting gate carrying the user-visible name.
  void make_negated_reduction(const Def& def, bool is_nand) {
    const CellKind pre = is_nand ? CellKind::kAnd2 : CellKind::kOr2;
    std::vector<std::string> args = reduce_to(def, def.args, 4, pre);
    CellKind final_kind;
    switch (args.size()) {
      case 2:
        final_kind = is_nand ? CellKind::kNand2 : CellKind::kNor2;
        break;
      case 3:
        final_kind = is_nand ? CellKind::kNand3 : CellKind::kNor3;
        break;
      default:
        final_kind = is_nand ? CellKind::kNand4 : CellKind::kNor4;
        break;
    }
    make_gate(def.name, final_kind, args);
  }

  /// XOR/XNOR of any arity: left-to-right XOR2 chain, final gate named.
  void make_xor_chain(const Def& def, bool negate_last) {
    std::vector<std::string> args = def.args;
    while (args.size() > 2) {
      const std::string t = temp_name(def.name);
      make_gate(t, CellKind::kXor2, {args[0], args[1]});
      args.erase(args.begin(), args.begin() + 2);
      args.insert(args.begin(), t);
    }
    make_gate(def.name, negate_last ? CellKind::kXnor2 : CellKind::kXor2,
              args);
  }

  /// Pairwise-reduces `args` with `two`-input cells until at most
  /// `max_operands` remain (but never below 2).
  std::vector<std::string> reduce_to(const Def& def,
                                     std::vector<std::string> args,
                                     std::size_t max_operands, CellKind two) {
    while (args.size() > max_operands) {
      std::vector<std::string> next;
      for (std::size_t i = 0; i < args.size(); i += 2) {
        if (i + 1 < args.size()) {
          const std::string t = temp_name(def.name);
          make_gate(t, two, {args[i], args[i + 1]});
          next.push_back(t);
        } else {
          next.push_back(args[i]);
        }
      }
      args = std::move(next);
    }
    return args;
  }

  std::string temp_name(const std::string& base) {
    return base + "__t" + std::to_string(temp_counter_++);
  }

  void make_gate(const std::string& name, CellKind kind,
                 const std::vector<std::string>& arg_names) {
    const GateId id = circuit_.add_gate(name, kind, {});
    ids_[name] = id;
    for (const std::string& arg : arg_names) patches_.push_back({id, arg});
  }

  void resolve_patches() {
    for (const auto& [gate_id, src_name] : patches_) {
      const auto it = ids_.find(src_name);
      if (it == ids_.end()) {
        throw Error("bench: gate references undefined signal '" + src_name +
                    "'");
      }
      circuit_.gate(gate_id).fanins.push_back(it->second);
    }
    patches_.clear();
  }

  Circuit circuit_;
  std::unordered_map<std::string, GateId> ids_;
  std::vector<std::pair<GateId, std::string>> patches_;
  int temp_counter_ = 0;
};

Circuit read_bench_impl(std::istream& in, const std::string& circuit_name) {
  Builder builder(circuit_name);
  std::vector<Def> defs;
  std::vector<std::string> output_names;
  std::set<std::string> seen_outputs;

  std::string raw;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    const auto hash = raw.find('#');
    if (hash != std::string::npos) raw.erase(hash);
    const std::string line = strip(raw);
    if (line.empty()) continue;

    const auto lparen = line.find('(');
    const auto equals = line.find('=');
    if (equals == std::string::npos) {
      // INPUT(x) or OUTPUT(x)
      if (lparen == std::string::npos || line.back() != ')') {
        parse_error(line_no, "expected INPUT(...), OUTPUT(...) or assignment");
      }
      const std::string head = upper(strip(line.substr(0, lparen)));
      const std::string arg =
          strip(line.substr(lparen + 1, line.size() - lparen - 2));
      if (arg.empty()) parse_error(line_no, "empty signal name");
      if (head == "INPUT") {
        builder.add_input(arg);
      } else if (head == "OUTPUT") {
        if (!seen_outputs.insert(arg).second) {
          parse_error(line_no, "duplicate OUTPUT(" + arg + ")");
        }
        output_names.push_back(arg);
      } else {
        parse_error(line_no, "unknown directive '" + head + "'");
      }
      continue;
    }

    // name = OP(a, b, ...)
    Def def;
    def.name = strip(line.substr(0, equals));
    def.line = line_no;
    const std::string rhs = strip(line.substr(equals + 1));
    const auto rp = rhs.find('(');
    if (def.name.empty() || rp == std::string::npos || rhs.back() != ')') {
      parse_error(line_no, "malformed assignment");
    }
    def.op = upper(strip(rhs.substr(0, rp)));
    const std::string args = rhs.substr(rp + 1, rhs.size() - rp - 2);
    std::stringstream as(args);
    std::string tok;
    while (std::getline(as, tok, ',')) {
      const std::string arg = strip(tok);
      if (arg.empty()) parse_error(line_no, "empty operand");
      def.args.push_back(arg);
    }
    if (def.args.empty()) parse_error(line_no, "operator with no operands");
    if (def.args.size() > kMaxBenchFanin) {
      parse_error(line_no, "operator with " + std::to_string(def.args.size()) +
                               " operands exceeds the fan-in cap of " +
                               std::to_string(kMaxBenchFanin));
    }
    defs.push_back(std::move(def));
  }

  return builder.build(defs, output_names);
}

const char* bench_op(CellKind kind) {
  switch (kind) {
    case CellKind::kInv:
      return "NOT";
    case CellKind::kBuf:
      return "BUFF";
    case CellKind::kNand2:
    case CellKind::kNand3:
    case CellKind::kNand4:
      return "NAND";
    case CellKind::kNor2:
    case CellKind::kNor3:
    case CellKind::kNor4:
      return "NOR";
    case CellKind::kAnd2:
    case CellKind::kAnd3:
      return "AND";
    case CellKind::kOr2:
    case CellKind::kOr3:
      return "OR";
    case CellKind::kXor2:
      return "XOR";
    case CellKind::kXnor2:
      return "XNOR";
    default:
      return nullptr;
  }
}

}  // namespace

Circuit read_bench(std::istream& in, const std::string& circuit_name) {
  return read_bench_impl(in, circuit_name);
}

Circuit read_bench_string(const std::string& text,
                          const std::string& circuit_name) {
  std::istringstream in(text);
  return read_bench_impl(in, circuit_name);
}

Circuit read_bench_file(const std::string& path) {
  std::ifstream in(path);
  STATLEAK_CHECK(in.good(), "cannot open bench file: " + path);
  std::string name = path;
  const auto slash = name.find_last_of('/');
  if (slash != std::string::npos) name.erase(0, slash + 1);
  const auto dot = name.find_last_of('.');
  if (dot != std::string::npos) name.erase(dot);
  return read_bench_impl(in, name);
}

void write_bench(std::ostream& out, const Circuit& circuit) {
  STATLEAK_CHECK(circuit.finalized(),
                 "write_bench requires a finalized circuit");
  out << "# " << circuit.name() << " — written by statleak\n";
  for (GateId id : circuit.inputs()) {
    out << "INPUT(" << circuit.gate(id).name << ")\n";
  }
  for (GateId id : circuit.outputs()) {
    out << "OUTPUT(" << circuit.gate(id).name << ")\n";
  }
  for (GateId id : circuit.topo_order()) {
    const Gate& g = circuit.gate(id);
    if (g.kind == CellKind::kInput) continue;
    const auto pin = [&](std::size_t p) -> const std::string& {
      return circuit.gate(g.fanins[p]).name;
    };
    const char* op = bench_op(g.kind);
    if (op != nullptr) {
      out << g.name << " = " << op << '(';
      for (std::size_t p = 0; p < g.fanins.size(); ++p) {
        if (p) out << ", ";
        out << pin(p);
      }
      out << ")\n";
      continue;
    }
    // Kinds the format lacks are decomposed into native operators using
    // "__w"-suffixed helper nets (round-trips to equivalent logic, with a
    // different cell count).
    switch (g.kind) {
      case CellKind::kAoi21:  // !((a & b) | c)
        out << g.name << "__w = AND(" << pin(0) << ", " << pin(1) << ")\n"
            << g.name << " = NOR(" << g.name << "__w, " << pin(2) << ")\n";
        break;
      case CellKind::kOai21:  // !((a | b) & c)
        out << g.name << "__w = OR(" << pin(0) << ", " << pin(1) << ")\n"
            << g.name << " = NAND(" << g.name << "__w, " << pin(2) << ")\n";
        break;
      case CellKind::kMux2:  // sel ? b : a
        out << g.name << "__wn = NOT(" << pin(2) << ")\n"
            << g.name << "__w0 = AND(" << pin(0) << ", " << g.name
            << "__wn)\n"
            << g.name << "__w1 = AND(" << pin(1) << ", " << pin(2) << ")\n"
            << g.name << " = OR(" << g.name << "__w0, " << g.name
            << "__w1)\n";
        break;
      default:
        STATLEAK_CHECK(false, "cell kind " + std::string(to_string(g.kind)) +
                                  " is not expressible in .bench");
    }
  }
}

std::string write_bench_string(const Circuit& circuit) {
  std::ostringstream os;
  write_bench(os, circuit);
  return os.str();
}

}  // namespace statleak
