#include "obs/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "util/error.hpp"

namespace statleak::obs {

std::string format_json_number(double value) {
  if (!std::isfinite(value)) return "null";
  if (value == 0.0) return "0";  // normalizes -0.0 as well
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), value);
  return std::string(buf, res.ptr);
}

std::string escape_json(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;  // UTF-8 bytes pass through verbatim
        }
    }
  }
  return out;
}

bool Json::as_bool() const {
  STATLEAK_CHECK(is_bool(), "JSON value is not a boolean");
  return std::get<bool>(value_);
}

double Json::as_number() const {
  STATLEAK_CHECK(is_number(), "JSON value is not a number");
  return std::get<double>(value_);
}

const std::string& Json::as_string() const {
  STATLEAK_CHECK(is_string(), "JSON value is not a string");
  return std::get<std::string>(value_);
}

const JsonArray& Json::as_array() const {
  STATLEAK_CHECK(is_array(), "JSON value is not an array");
  return std::get<JsonArray>(value_);
}

const JsonMembers& Json::as_object() const {
  STATLEAK_CHECK(is_object(), "JSON value is not an object");
  return std::get<JsonMembers>(value_);
}

void Json::set(std::string_view key, Json value) {
  STATLEAK_CHECK(is_object(), "JSON set() on a non-object");
  auto& members = std::get<JsonMembers>(value_);
  for (auto& [k, v] : members) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  members.emplace_back(std::string(key), std::move(value));
}

const Json* Json::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : std::get<JsonMembers>(value_)) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Json& Json::at(std::string_view key) const {
  const Json* found = find(key);
  STATLEAK_CHECK(found != nullptr,
                 "JSON object has no key '" + std::string(key) + "'");
  return *found;
}

void Json::push_back(Json value) {
  STATLEAK_CHECK(is_array(), "JSON push_back() on a non-array");
  std::get<JsonArray>(value_).push_back(std::move(value));
}

// ------------------------------------------------------------- writer ----

void Json::dump_to(std::string& out, int indent, int depth) const {
  const auto newline_pad = [&](int levels) {
    if (indent <= 0) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * levels), ' ');
  };

  if (is_null()) {
    out += "null";
  } else if (is_bool()) {
    out += std::get<bool>(value_) ? "true" : "false";
  } else if (is_number()) {
    out += format_json_number(std::get<double>(value_));
  } else if (is_string()) {
    out += '"';
    out += escape_json(std::get<std::string>(value_));
    out += '"';
  } else if (is_array()) {
    const auto& items = std::get<JsonArray>(value_);
    if (items.empty()) {
      out += "[]";
      return;
    }
    out += '[';
    for (std::size_t i = 0; i < items.size(); ++i) {
      if (i > 0) out += indent > 0 ? "," : ", ";
      newline_pad(depth + 1);
      items[i].dump_to(out, indent, depth + 1);
    }
    newline_pad(depth);
    out += ']';
  } else {
    const auto& members = std::get<JsonMembers>(value_);
    if (members.empty()) {
      out += "{}";
      return;
    }
    out += '{';
    for (std::size_t i = 0; i < members.size(); ++i) {
      if (i > 0) out += indent > 0 ? "," : ", ";
      newline_pad(depth + 1);
      out += '"';
      out += escape_json(members[i].first);
      out += "\": ";
      members[i].second.dump_to(out, indent, depth + 1);
    }
    newline_pad(depth);
    out += '}';
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  if (indent > 0) out += '\n';
  return out;
}

// ------------------------------------------------------------- parser ----

namespace {

// Containers deeper than this are rejected. The run-report schema nests
// four levels; the bound exists so adversarial input (e.g. 1 MB of '[')
// exhausts a counter instead of the call stack.
constexpr int kMaxParseDepth = 256;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value();
    skip_ws();
    check(pos_ == text_.size(), "trailing characters after JSON document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw Error("JSON parse error at byte " + std::to_string(pos_) + ": " +
                what);
  }
  void check(bool ok, const char* what) const {
    if (!ok) fail(what);
  }
  char peek() const {
    check(pos_ < text_.size(), "unexpected end of input");
    return text_[pos_];
  }
  char take() {
    const char c = peek();
    ++pos_;
    return c;
  }
  bool eat(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  void expect(char c) {
    if (!eat(c)) fail(std::string("expected '") + c + "'");
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }
  void expect_literal(std::string_view word) {
    check(text_.substr(pos_, word.size()) == word, "invalid literal");
    pos_ += word.size();
  }

  Json parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': {
        const DepthGuard guard(this);
        return parse_object();
      }
      case '[': {
        const DepthGuard guard(this);
        return parse_array();
      }
      case '"': return Json(parse_string());
      case 't': expect_literal("true"); return Json(true);
      case 'f': expect_literal("false"); return Json(false);
      case 'n': expect_literal("null"); return Json(nullptr);
      default: return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    Json obj = Json::object();
    skip_ws();
    if (eat('}')) return obj;
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.set(key, parse_value());
      skip_ws();
      if (eat('}')) return obj;
      expect(',');
    }
  }

  Json parse_array() {
    expect('[');
    Json arr = Json::array();
    skip_ws();
    if (eat(']')) return arr;
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      if (eat(']')) return arr;
      expect(',');
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = take();
      if (c == '"') return out;
      if (c != '\\') {
        check(static_cast<unsigned char>(c) >= 0x20,
              "unescaped control character in string");
        out += c;
        continue;
      }
      const char esc = take();
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': out += parse_unicode_escape(); break;
        default: fail("invalid escape sequence");
      }
    }
  }

  std::string parse_unicode_escape() {
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = take();
      code <<= 4;
      if (c >= '0' && c <= '9') {
        code |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        code |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        code |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail("invalid \\u escape");
      }
    }
    // UTF-8 encode the BMP code point (surrogate pairs are not combined —
    // the emitter never produces them for this schema).
    std::string out;
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
    return out;
  }

  Json parse_number() {
    const std::size_t start = pos_;
    (void)eat('-');
    while (pos_ < text_.size() &&
           ((text_[pos_] >= '0' && text_[pos_] <= '9') || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    double value = 0.0;
    const auto res =
        std::from_chars(text_.data() + start, text_.data() + pos_, value);
    check(res.ec == std::errc() && res.ptr == text_.data() + pos_ &&
              pos_ > start,
          "invalid number");
    return Json(value);
  }

  /// RAII nesting counter: containers recurse through parse_value, so one
  /// guard per container level bounds the stack.
  struct DepthGuard {
    explicit DepthGuard(Parser* p) : parser(p) {
      if (++parser->depth_ > kMaxParseDepth) {
        parser->fail("nesting deeper than " + std::to_string(kMaxParseDepth) +
                     " levels");
      }
    }
    ~DepthGuard() { --parser->depth_; }
    DepthGuard(const DepthGuard&) = delete;
    DepthGuard& operator=(const DepthGuard&) = delete;
    Parser* parser;
  };

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

Json Json::parse(std::string_view text) { return Parser(text).parse_document(); }

}  // namespace statleak::obs
