/// \file report.hpp
/// \brief Versioned JSON run reports assembled from an obs::Registry.
///
/// Schema (version 1) — top-level keys in this fixed order:
///
///   {
///     "schema_version": 1,
///     "tool": "statleak",
///     "tool_version": "<project version>",
///     "config":   { ... },   // config echo, keys sorted
///     "phases":   [ {"name", "seconds", "calls"}, ... ],  // run order
///     "counters": { ... },   // keys sorted
///     "gauges":   { ... },   // keys sorted
///     "traces":   { "<stream>": [ {"step", "phase", "objective",
///                                  "yield", "delay_ps", "commits",
///                                  "rejected"}, ... ] }   // streams sorted
///   }
///
/// Versioning rule: adding a key is backward compatible and does NOT bump
/// `schema_version`; renaming or removing a key, changing a type or a
/// unit DOES. The golden-file test in tests/obs_test.cpp pins the layout —
/// when it fails, either the change is a mistake or the version must be
/// bumped and the golden text regenerated alongside it.

#pragma once

#include <string>

#include "obs/json.hpp"
#include "obs/registry.hpp"

namespace statleak::obs {

/// Current run-report schema version (see the bump rule above).
inline constexpr int kReportSchemaVersion = 1;

/// Assembles the report document from everything the registry collected.
Json build_run_report(const Registry& registry);

/// build_run_report() pretty-printed with 2-space indentation and a
/// trailing newline — the exact bytes `--report-json` writes.
std::string run_report_json(const Registry& registry);

/// Writes run_report_json() to `path`; throws statleak::Error on I/O
/// failure.
void write_run_report(const std::string& path, const Registry& registry);

}  // namespace statleak::obs
