/// \file report.hpp
/// \brief Versioned JSON run reports assembled from an obs::Registry.
///
/// Schema (version 2) — top-level keys in this fixed order:
///
///   {
///     "schema_version": 2,
///     "tool": "statleak",
///     "tool_version": "<project version>",
///     "completed": true,          // false when the run stopped early
///     "incomplete_reason": "",    // e.g. "deadline"; empty when completed
///     "config":   { ... },   // config echo, keys sorted
///     "phases":   [ {"name", "seconds", "calls"}, ... ],  // run order
///     "counters": { ... },   // keys sorted
///     "gauges":   { ... },   // keys sorted
///     "traces":   { "<stream>": [ {"step", "phase", "objective",
///                                  "yield", "delay_ps", "commits",
///                                  "rejected"}, ... ] }   // streams sorted
///   }
///
/// Versioning rule: appending a key is backward compatible and does NOT
/// bump `schema_version`; renaming or removing a key, changing a type or a
/// unit, or inserting a key into the fixed top-level order DOES (the order
/// is part of the schema — v1 -> v2 inserted "completed" and
/// "incomplete_reason" after "tool_version"). The golden-file test in
/// tests/obs_test.cpp pins the layout — when it fails, either the change
/// is a mistake or the version must be bumped and the golden text
/// regenerated alongside it.

#pragma once

#include <string>

#include "obs/json.hpp"
#include "obs/registry.hpp"

namespace statleak::obs {

/// Current run-report schema version (see the bump rule above).
inline constexpr int kReportSchemaVersion = 2;

/// Assembles the report document from everything the registry collected.
Json build_run_report(const Registry& registry);

/// build_run_report() pretty-printed with 2-space indentation and a
/// trailing newline — the exact bytes `--report-json` writes.
std::string run_report_json(const Registry& registry);

/// Writes run_report_json() to `path`; throws statleak::Error on I/O
/// failure.
void write_run_report(const std::string& path, const Registry& registry);

}  // namespace statleak::obs
