/// \file registry.hpp
/// \brief Observability primitives: counters, gauges, phase timers and
///        trace streams behind a thread-safe Registry.
///
/// Design rules:
///
///   * Null-sink fast path. Every instrumentation site holds a
///     `Registry*` that may be null; with no registry attached the only
///     cost is a pointer test (no clock reads, no locks, no allocation),
///     which keeps the optimizer and Monte-Carlo hot loops within noise
///     of the uninstrumented build (pinned by bench_obs_overhead).
///   * Read-only observation. Instrumentation never feeds back into the
///     computation, so results are bit-identical with and without a
///     registry attached (pinned by obs_test).
///   * Per-thread accumulation. Shard workers accumulate into a local
///     `LocalCounter` and merge into the registry once on scope exit, so
///     the parallel_for workers of util/parallel.hpp never contend on the
///     registry mutex inside their loops.
///
/// The collected state is emitted as a versioned JSON run report by
/// obs/report.hpp.

#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace statleak::obs {

/// One snapshot in a named trace stream: an optimizer iteration or a
/// Monte-Carlo progress milestone. Unused fields stay at their defaults
/// (e.g. the deterministic optimizer has no yield; MC has no commits).
struct TraceEvent {
  std::int64_t step = 0;    ///< iteration index / cumulative sample count
  std::string phase;        ///< phase label ("sizing", "assign", ...)
  double objective = 0.0;   ///< optimizer objective [nA] / running mean leakage
  double yield = 0.0;       ///< timing yield at the snapshot (SSTA), if any
  double delay_ps = 0.0;    ///< delay figure at the snapshot, if any
  std::int64_t commits = 0; ///< cumulative accepted moves
  std::int64_t rejected = 0;///< cumulative rejected moves
};

/// Accumulated wall time of one named phase.
struct PhaseTime {
  std::string name;
  double seconds = 0.0;
  std::int64_t calls = 0;  ///< number of ScopedTimer scopes merged in
};

/// Thread-safe sink for counters, gauges, phase times, trace events and a
/// config echo. One Registry describes one run; attach it to the engines
/// you want observed and emit it with obs/report.hpp afterwards.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // ------------------------------------------------------------ writers --
  /// Adds `delta` to the named monotonic counter (created at 0).
  void add(std::string_view counter, double delta);
  /// Sets the named gauge (last write wins).
  void set_gauge(std::string_view gauge, double value);
  /// Adds one timed scope to the named phase. Phases keep first-seen
  /// order, so repeated scopes (e.g. boost rounds) accumulate in place.
  /// `calls` is how many scopes the contribution represents — 1 for a
  /// ScopedTimer; snapshot merges (obs/snapshot.hpp) pass the remote call
  /// count through.
  void add_phase_s(std::string_view phase, double seconds,
                   std::int64_t calls = 1);
  /// Appends an event to the named trace stream.
  void trace(std::string_view stream, TraceEvent event);

  /// Echoes a config key into the report. String values are emitted as
  /// JSON strings; the numeric/boolean overloads as bare JSON tokens.
  void note_config(std::string_view key, std::string_view value);
  void note_config_num(std::string_view key, double value);
  void note_config_num(std::string_view key, std::int64_t value);
  void note_config_num(std::string_view key, bool value);

  /// Flags the run as incomplete (deadline expiry, quarantine-triggered
  /// abort, ...). Emitted by the run report as `"completed": false` plus
  /// `"incomplete_reason"`. The first reason wins; later calls are ignored
  /// so the engine that stopped the run names it.
  void mark_incomplete(std::string_view reason);

  // ------------------------------------------------------------ readers --
  /// Counters, sorted by name.
  std::vector<std::pair<std::string, double>> counters() const;
  /// Gauges, sorted by name.
  std::vector<std::pair<std::string, double>> gauges() const;
  /// Phase times in first-recorded order.
  std::vector<PhaseTime> phases() const;
  /// Trace stream names, sorted.
  std::vector<std::string> trace_streams() const;
  /// A copy of one trace stream (empty if absent).
  std::vector<TraceEvent> trace_events(std::string_view stream) const;
  /// Config echo entries sorted by key; `.second.second` is true when the
  /// value is a pre-rendered bare JSON token rather than a string.
  std::vector<std::pair<std::string, std::pair<std::string, bool>>> config()
      const;

  /// Single counter / gauge lookup (0 / NaN-free: returns fallback when
  /// absent). Convenience for tests and report assembly.
  double counter_value(std::string_view name, double fallback = 0.0) const;
  double gauge_value(std::string_view name, double fallback = 0.0) const;

  /// True unless mark_incomplete() was called.
  bool completed() const;
  /// The first mark_incomplete() reason; empty for completed runs.
  std::string incomplete_reason() const;

 private:
  mutable std::mutex mutex_;
  bool completed_ = true;
  std::string incomplete_reason_;
  std::map<std::string, double, std::less<>> counters_;
  std::map<std::string, double, std::less<>> gauges_;
  std::vector<PhaseTime> phases_;  ///< small; linear scan keyed by name
  std::map<std::string, std::vector<TraceEvent>, std::less<>> traces_;
  std::map<std::string, std::pair<std::string, bool>, std::less<>> config_;
};

/// Accumulates locally and merges into the registry once, on scope exit
/// (or never, when constructed with a null registry). The increment path
/// is a plain double add — safe and cheap inside sharded worker loops.
class LocalCounter {
 public:
  LocalCounter(Registry* registry, const char* name)
      : registry_(registry), name_(name) {}
  ~LocalCounter() { flush(); }
  LocalCounter(const LocalCounter&) = delete;
  LocalCounter& operator=(const LocalCounter&) = delete;

  void add(double delta = 1.0) { pending_ += delta; }
  double pending() const { return pending_; }

  /// Merges the pending total now (idempotent: resets the local sum).
  void flush() {
    if (registry_ != nullptr && pending_ != 0.0) {
      registry_->add(name_, pending_);
      pending_ = 0.0;
    }
  }

 private:
  Registry* registry_;
  const char* name_;
  double pending_ = 0.0;
};

/// Times one phase scope. With a null registry the constructor and
/// destructor do nothing at all — not even a clock read.
class ScopedTimer {
 public:
  ScopedTimer(Registry* registry, const char* phase)
      : registry_(registry), phase_(phase) {
    if (registry_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() { stop(); }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Records the elapsed time now instead of at scope exit (idempotent).
  void stop() {
    if (registry_ == nullptr) return;
    const auto end = std::chrono::steady_clock::now();
    registry_->add_phase_s(
        phase_, std::chrono::duration<double>(end - start_).count());
    registry_ = nullptr;
  }

 private:
  Registry* registry_;
  const char* phase_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace statleak::obs
