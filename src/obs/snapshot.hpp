/// \file snapshot.hpp
/// \brief Registry serialization + merge for the distributed runner.
///
/// A worker process serializes everything its local Registry collected
/// into a JSON snapshot and ships it over the campaign protocol
/// (docs/DISTRIBUTED.md); the coordinator merges each snapshot into the
/// fleet registry under a per-worker prefix ("w3."), so the fleet-level
/// run report carries every worker's counters, phase times and config
/// echo next to the coordinator's own. Merging is deterministic: it only
/// uses Registry's public writers, and numbers round-trip exactly
/// (obs::Json renders shortest-form via std::to_chars and parses with
/// std::from_chars).

#pragma once

#include <string_view>

#include "obs/json.hpp"
#include "obs/registry.hpp"

namespace statleak::obs {

/// Serializes the registry's full state: {"completed", "incomplete_reason",
/// "config", "phases", "counters", "gauges", "traces"} — the run-report
/// sections without the report envelope (schema/tool keys).
Json registry_snapshot(const Registry& registry);

/// Merges a registry_snapshot() document into `into`, prepending `prefix`
/// to every counter, gauge, phase, trace-stream and config key (pass e.g.
/// "w0." — the separator is the caller's). Counters add, gauges overwrite,
/// phases accumulate seconds and call counts, trace events append in
/// snapshot order. An incomplete snapshot marks `into` incomplete with
/// prefix + reason (Registry's first-reason-wins rule applies). Unknown or
/// missing sections are ignored; malformed section types throw
/// statleak::Error.
void merge_registry_snapshot(Registry& into, const Json& snapshot,
                             std::string_view prefix = {});

}  // namespace statleak::obs
