#include "obs/registry.hpp"

#include <algorithm>

#include "obs/json.hpp"

namespace statleak::obs {

namespace {

template <typename Map>
std::vector<std::pair<std::string, double>> sorted_copy(std::mutex& mutex,
                                                        const Map& map) {
  std::lock_guard<std::mutex> lock(mutex);
  return {map.begin(), map.end()};  // std::map iterates in key order
}

}  // namespace

void Registry::add(std::string_view counter, double delta) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counters_.find(counter);
  if (it == counters_.end()) {
    counters_.emplace(std::string(counter), delta);
  } else {
    it->second += delta;
  }
}

void Registry::set_gauge(std::string_view gauge, double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = gauges_.find(gauge);
  if (it == gauges_.end()) {
    gauges_.emplace(std::string(gauge), value);
  } else {
    it->second = value;
  }
}

void Registry::add_phase_s(std::string_view phase, double seconds,
                           std::int64_t calls) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (PhaseTime& p : phases_) {
    if (p.name == phase) {
      p.seconds += seconds;
      p.calls += calls;
      return;
    }
  }
  phases_.push_back(PhaseTime{std::string(phase), seconds, calls});
}

void Registry::trace(std::string_view stream, TraceEvent event) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = traces_.find(stream);
  if (it == traces_.end()) {
    traces_.emplace(std::string(stream),
                    std::vector<TraceEvent>{std::move(event)});
  } else {
    it->second.push_back(std::move(event));
  }
}

void Registry::note_config(std::string_view key, std::string_view value) {
  std::lock_guard<std::mutex> lock(mutex_);
  config_.insert_or_assign(std::string(key),
                           std::pair<std::string, bool>{std::string(value),
                                                        /*bare=*/false});
}

void Registry::note_config_num(std::string_view key, double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  config_.insert_or_assign(
      std::string(key),
      std::pair<std::string, bool>{format_json_number(value), /*bare=*/true});
}

void Registry::note_config_num(std::string_view key, std::int64_t value) {
  std::lock_guard<std::mutex> lock(mutex_);
  config_.insert_or_assign(
      std::string(key),
      std::pair<std::string, bool>{std::to_string(value), /*bare=*/true});
}

void Registry::note_config_num(std::string_view key, bool value) {
  std::lock_guard<std::mutex> lock(mutex_);
  config_.insert_or_assign(
      std::string(key),
      std::pair<std::string, bool>{value ? "true" : "false", /*bare=*/true});
}

void Registry::mark_incomplete(std::string_view reason) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!completed_) return;  // first reason wins
  completed_ = false;
  incomplete_reason_ = std::string(reason);
}

bool Registry::completed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return completed_;
}

std::string Registry::incomplete_reason() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return incomplete_reason_;
}

std::vector<std::pair<std::string, double>> Registry::counters() const {
  return sorted_copy(mutex_, counters_);
}

std::vector<std::pair<std::string, double>> Registry::gauges() const {
  return sorted_copy(mutex_, gauges_);
}

std::vector<PhaseTime> Registry::phases() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return phases_;
}

std::vector<std::string> Registry::trace_streams() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(traces_.size());
  for (const auto& [name, events] : traces_) names.push_back(name);
  return names;
}

std::vector<TraceEvent> Registry::trace_events(std::string_view stream) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = traces_.find(stream);
  return it == traces_.end() ? std::vector<TraceEvent>{} : it->second;
}

std::vector<std::pair<std::string, std::pair<std::string, bool>>>
Registry::config() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {config_.begin(), config_.end()};
}

double Registry::counter_value(std::string_view name, double fallback) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? fallback : it->second;
}

double Registry::gauge_value(std::string_view name, double fallback) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? fallback : it->second;
}

}  // namespace statleak::obs
