#include "obs/snapshot.hpp"

#include <cstdint>
#include <string>
#include <utility>

#include "util/error.hpp"

namespace statleak::obs {

namespace {

Json trace_event_json(const TraceEvent& e) {
  Json obj = Json::object();
  obj.set("step", static_cast<double>(e.step));
  obj.set("phase", e.phase);
  obj.set("objective", e.objective);
  obj.set("yield", e.yield);
  obj.set("delay_ps", e.delay_ps);
  obj.set("commits", static_cast<double>(e.commits));
  obj.set("rejected", static_cast<double>(e.rejected));
  return obj;
}

TraceEvent trace_event_from_json(const Json& obj) {
  TraceEvent e;
  e.step = static_cast<std::int64_t>(obj.at("step").as_number());
  e.phase = obj.at("phase").as_string();
  e.objective = obj.at("objective").as_number();
  e.yield = obj.at("yield").as_number();
  e.delay_ps = obj.at("delay_ps").as_number();
  e.commits = static_cast<std::int64_t>(obj.at("commits").as_number());
  e.rejected = static_cast<std::int64_t>(obj.at("rejected").as_number());
  return e;
}

}  // namespace

Json registry_snapshot(const Registry& registry) {
  Json snap = Json::object();
  snap.set("completed", registry.completed());
  snap.set("incomplete_reason", registry.incomplete_reason());

  Json config = Json::object();
  for (const auto& [key, value] : registry.config()) {
    const auto& [text, bare] = value;
    config.set(key, bare ? Json::parse(text) : Json(text));
  }
  snap.set("config", std::move(config));

  Json phases = Json::array();
  for (const PhaseTime& p : registry.phases()) {
    Json entry = Json::object();
    entry.set("name", p.name);
    entry.set("seconds", p.seconds);
    entry.set("calls", static_cast<double>(p.calls));
    phases.push_back(std::move(entry));
  }
  snap.set("phases", std::move(phases));

  Json counters = Json::object();
  for (const auto& [name, value] : registry.counters()) {
    counters.set(name, value);
  }
  snap.set("counters", std::move(counters));

  Json gauges = Json::object();
  for (const auto& [name, value] : registry.gauges()) {
    gauges.set(name, value);
  }
  snap.set("gauges", std::move(gauges));

  Json traces = Json::object();
  for (const std::string& stream : registry.trace_streams()) {
    Json events = Json::array();
    for (const TraceEvent& e : registry.trace_events(stream)) {
      events.push_back(trace_event_json(e));
    }
    traces.set(stream, std::move(events));
  }
  snap.set("traces", std::move(traces));
  return snap;
}

void merge_registry_snapshot(Registry& into, const Json& snapshot,
                             std::string_view prefix) {
  STATLEAK_CHECK(snapshot.is_object(),
                 "registry snapshot must be a JSON object");
  const std::string pre(prefix);

  if (const Json* counters = snapshot.find("counters")) {
    for (const auto& [name, value] : counters->as_object()) {
      into.add(pre + name, value.as_number());
    }
  }
  if (const Json* gauges = snapshot.find("gauges")) {
    for (const auto& [name, value] : gauges->as_object()) {
      into.set_gauge(pre + name, value.as_number());
    }
  }
  if (const Json* phases = snapshot.find("phases")) {
    for (const Json& entry : phases->as_array()) {
      into.add_phase_s(
          pre + entry.at("name").as_string(),
          entry.at("seconds").as_number(),
          static_cast<std::int64_t>(entry.at("calls").as_number()));
    }
  }
  if (const Json* traces = snapshot.find("traces")) {
    for (const auto& [stream, events] : traces->as_object()) {
      for (const Json& e : events.as_array()) {
        into.trace(pre + stream, trace_event_from_json(e));
      }
    }
  }
  if (const Json* config = snapshot.find("config")) {
    for (const auto& [key, value] : config->as_object()) {
      if (value.is_string()) {
        into.note_config(pre + key, value.as_string());
      } else if (value.is_bool()) {
        into.note_config_num(pre + key, value.as_bool());
      } else if (value.is_number()) {
        into.note_config_num(pre + key, value.as_number());
      } else {
        // null (a non-finite number on the wire) — echo as a string so
        // nothing is silently dropped.
        into.note_config(pre + key, "null");
      }
    }
  }
  if (const Json* completed = snapshot.find("completed")) {
    if (!completed->as_bool()) {
      std::string reason = "remote";
      if (const Json* r = snapshot.find("incomplete_reason")) {
        if (r->is_string() && !r->as_string().empty()) reason = r->as_string();
      }
      into.mark_incomplete(pre + reason);
    }
  }
}

}  // namespace statleak::obs
