/// \file json.hpp
/// \brief Minimal JSON value, writer and parser for the run-report schema.
///
/// Deliberately small: just what the observability layer needs to emit a
/// deterministic, machine-readable report and to round-trip it in tests.
///
///   * Objects preserve *insertion* order — the emitter, not the consumer,
///     owns key order, which is what makes golden-file tests stable.
///   * Numbers are rendered with std::to_chars (shortest form that
///     round-trips), so output is identical across platforms and locales.
///   * The parser accepts exactly RFC 8259 JSON and throws statleak::Error
///     with a byte offset on malformed input. Container nesting is bounded
///     (256 levels) so hostile input cannot exhaust the call stack.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace statleak::obs {

/// Renders a double as a bare JSON number token: shortest representation
/// that round-trips, "0" for zeros, never locale-dependent. Non-finite
/// values (which JSON cannot express) are rendered as null.
std::string format_json_number(double value);

/// Escapes a string for embedding between JSON quotes.
std::string escape_json(std::string_view text);

class Json;
using JsonArray = std::vector<Json>;
/// Order-preserving object representation.
using JsonMembers = std::vector<std::pair<std::string, Json>>;

/// A JSON document node.
class Json {
 public:
  Json() : value_(nullptr) {}                      // null
  Json(std::nullptr_t) : value_(nullptr) {}        // NOLINT(runtime/explicit)
  Json(bool b) : value_(b) {}                      // NOLINT(runtime/explicit)
  Json(double d) : value_(d) {}                    // NOLINT(runtime/explicit)
  Json(std::int64_t i) : value_(static_cast<double>(i)) {}  // NOLINT
  Json(int i) : value_(static_cast<double>(i)) {}  // NOLINT(runtime/explicit)
  Json(std::string s) : value_(std::move(s)) {}    // NOLINT(runtime/explicit)
  Json(const char* s) : value_(std::string(s)) {}  // NOLINT(runtime/explicit)
  Json(JsonArray a) : value_(std::move(a)) {}      // NOLINT(runtime/explicit)
  Json(JsonMembers m) : value_(std::move(m)) {}    // NOLINT(runtime/explicit)

  static Json object() { return Json(JsonMembers{}); }
  static Json array() { return Json(JsonArray{}); }

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
  bool is_bool() const { return std::holds_alternative<bool>(value_); }
  bool is_number() const { return std::holds_alternative<double>(value_); }
  bool is_string() const { return std::holds_alternative<std::string>(value_); }
  bool is_array() const { return std::holds_alternative<JsonArray>(value_); }
  bool is_object() const { return std::holds_alternative<JsonMembers>(value_); }

  /// Typed accessors; throw statleak::Error on a type mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const JsonArray& as_array() const;
  const JsonMembers& as_object() const;

  /// Object helpers. set() appends or overwrites in place (keeps order);
  /// at() throws when the key is missing; find() returns nullptr instead.
  void set(std::string_view key, Json value);
  const Json* find(std::string_view key) const;
  const Json& at(std::string_view key) const;
  bool contains(std::string_view key) const { return find(key) != nullptr; }

  /// Array helper.
  void push_back(Json value);

  /// Serializes the document. indent = 0 emits compact one-line JSON;
  /// indent > 0 pretty-prints with that many spaces per level (and a
  /// trailing newline at top level, suitable for writing to a file).
  std::string dump(int indent = 0) const;

  /// Parses a complete JSON document (trailing whitespace allowed,
  /// anything else is an error).
  static Json parse(std::string_view text);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  std::variant<std::nullptr_t, bool, double, std::string, JsonArray,
               JsonMembers>
      value_;
};

}  // namespace statleak::obs
