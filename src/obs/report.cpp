#include "obs/report.hpp"

#include <fstream>

#include "util/error.hpp"

namespace statleak::obs {

namespace {

// Kept in sync with the CMake project() version by inspection; it only
// annotates reports, nothing parses it.
constexpr const char* kToolVersion = "1.0.0";

Json trace_event_json(const TraceEvent& e) {
  Json obj = Json::object();
  obj.set("step", static_cast<double>(e.step));
  obj.set("phase", e.phase);
  obj.set("objective", e.objective);
  obj.set("yield", e.yield);
  obj.set("delay_ps", e.delay_ps);
  obj.set("commits", static_cast<double>(e.commits));
  obj.set("rejected", static_cast<double>(e.rejected));
  return obj;
}

}  // namespace

Json build_run_report(const Registry& registry) {
  Json report = Json::object();
  report.set("schema_version", kReportSchemaVersion);
  report.set("tool", "statleak");
  report.set("tool_version", kToolVersion);
  report.set("completed", registry.completed());
  report.set("incomplete_reason", registry.incomplete_reason());

  Json config = Json::object();
  for (const auto& [key, value] : registry.config()) {
    const auto& [text, bare] = value;
    if (bare) {
      // Pre-rendered bare token (number / bool): parse back to a typed
      // node so the emitter prints it unquoted.
      config.set(key, Json::parse(text));
    } else {
      config.set(key, text);
    }
  }
  report.set("config", std::move(config));

  Json phases = Json::array();
  for (const PhaseTime& p : registry.phases()) {
    Json entry = Json::object();
    entry.set("name", p.name);
    entry.set("seconds", p.seconds);
    entry.set("calls", static_cast<double>(p.calls));
    phases.push_back(std::move(entry));
  }
  report.set("phases", std::move(phases));

  Json counters = Json::object();
  for (const auto& [name, value] : registry.counters()) {
    counters.set(name, value);
  }
  report.set("counters", std::move(counters));

  Json gauges = Json::object();
  for (const auto& [name, value] : registry.gauges()) {
    gauges.set(name, value);
  }
  report.set("gauges", std::move(gauges));

  Json traces = Json::object();
  for (const std::string& stream : registry.trace_streams()) {
    Json events = Json::array();
    for (const TraceEvent& e : registry.trace_events(stream)) {
      events.push_back(trace_event_json(e));
    }
    traces.set(stream, std::move(events));
  }
  report.set("traces", std::move(traces));
  return report;
}

std::string run_report_json(const Registry& registry) {
  return build_run_report(registry).dump(/*indent=*/2);
}

void write_run_report(const std::string& path, const Registry& registry) {
  std::ofstream file(path);
  STATLEAK_CHECK(file.good(), "cannot write run report to " + path);
  file << run_report_json(registry);
  STATLEAK_CHECK(file.good(), "write failed for run report " + path);
}

}  // namespace statleak::obs
