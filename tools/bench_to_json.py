#!/usr/bin/env python3
"""Convert raw benchmark JSON output into a compact BENCH_*.json.

Default mode reads the Google Benchmark JSON emitted by

    bench_fig5_runtime --benchmark_filter='BM_MonteCarloBatched' \
        --benchmark_format=json

from a file (or stdin) and distills the Monte-Carlo throughput series into
samples/sec per (circuit, engine), plus the batched/scalar speedup per
circuit.  When the run used --benchmark_repetitions, the median aggregate is
preferred; otherwise the median over the plain iteration entries is taken.

With --estimators the input is instead the JSON document printed by
bench_estimator_variance (across-replication variance per circuit, metric,
estimator) and the output is BENCH_estimators.json: the same means and
variances plus the variance-reduction factor of every variance-reduced
estimator against the plain-MC baseline of its (circuit, metric).  That
factor is the sample-count reduction at equal variance, and it is what the
CI estimator-quality gate pins floors on.

Usage:
    bench_to_json.py [raw_benchmark.json] [-o BENCH_mc.json]
    bench_to_json.py --estimators [raw_estimators.json] \
        [-o BENCH_estimators.json]

With no -o the result is printed to stdout.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys


def _engine_of(entry: dict) -> str:
    # The benchmark exports a "batched" counter: 1 = batched SoA engine,
    # 0 = scalar per-sample reference.
    return "batched" if entry.get("batched", 0.0) > 0.5 else "scalar"


def distill(raw: dict) -> dict:
    """Reduce benchmark entries to {circuit: {engine: samples_per_second}}."""
    # (circuit, engine) -> list of items_per_second; medians are stored
    # separately and win over per-iteration samples when present.
    samples: dict[tuple[str, str], list[float]] = {}
    medians: dict[tuple[str, str], float] = {}
    for entry in raw.get("benchmarks", []):
        if not entry.get("name", "").startswith("BM_MonteCarloBatched"):
            continue
        if "items_per_second" not in entry:
            continue
        circuit = entry.get("label", "")
        if not circuit:
            continue
        key = (circuit, _engine_of(entry))
        if entry.get("run_type") == "aggregate":
            if entry.get("aggregate_name") == "median":
                medians[key] = entry["items_per_second"]
            continue
        samples.setdefault(key, []).append(entry["items_per_second"])

    circuits: dict[str, dict] = {}
    for key in sorted(set(samples) | set(medians)):
        circuit, engine = key
        sps = medians.get(key)
        if sps is None:
            sps = statistics.median(samples[key])
        circuits.setdefault(circuit, {})[engine] = {
            "samples_per_second": round(sps, 1)
        }
    for circuit, engines in circuits.items():
        if "scalar" in engines and "batched" in engines:
            scalar = engines["scalar"]["samples_per_second"]
            batched = engines["batched"]["samples_per_second"]
            if scalar > 0:
                engines["speedup_batched_vs_scalar"] = round(batched / scalar, 2)

    context = raw.get("context", {})
    return {
        "schema_version": 1,
        "generated_by": "tools/bench_to_json.py",
        "benchmark": "bench_fig5_runtime:BM_MonteCarloBatched",
        "unit": "monte-carlo samples per second, single thread",
        "host": {
            "num_cpus": context.get("num_cpus"),
            "mhz_per_cpu": context.get("mhz_per_cpu"),
            "library_build_type": context.get("library_build_type"),
        },
        "circuits": circuits,
        # Historical anchor for the perf trajectory: the scalar engine's
        # single-thread throughput on c7552p before the batched-SoA PR
        # (Box-Muller normals, per-sample scratch allocation). See
        # EXPERIMENTS.md F5 and docs/PERFORMANCE.md.
        "baseline": {
            "pre_batched_pr_scalar": {
                "c7552p": {"samples_per_second": 3593.0}
            }
        },
    }


def distill_estimators(raw: dict) -> dict:
    """Reduce bench_estimator_variance output to variance-reduction factors.

    Output shape:
        circuits.<circuit>.<metric>.plain = {mean, variance}
        circuits.<circuit>.<metric>.<estimator> =
            {mean, variance, variance_reduction[, ess_mean]}
    """
    if raw.get("bench") != "estimator_variance":
        raise ValueError("input is not bench_estimator_variance output")

    baseline: dict[tuple[str, str], float] = {}
    for entry in raw.get("results", []):
        if entry["estimator"] == "plain":
            baseline[(entry["circuit"], entry["metric"])] = entry["variance"]

    circuits: dict[str, dict] = {}
    for entry in raw.get("results", []):
        circuit, metric = entry["circuit"], entry["metric"]
        record = {
            "mean": entry["mean"],
            "variance": entry["variance"],
        }
        if entry["estimator"] != "plain":
            key = (circuit, metric)
            if key not in baseline:
                raise ValueError(
                    f"no plain baseline for {circuit}/{metric}")
            if entry["variance"] > 0:
                record["variance_reduction"] = round(
                    baseline[key] / entry["variance"], 2)
            else:
                record["variance_reduction"] = float("inf")
            # ESS only means something for weighted (importance-sampled)
            # estimators; QMC/CV runs keep every weight at 1.
            if entry.get("ess_mean", 0) and \
                    entry["ess_mean"] != raw.get("samples_per_run"):
                record["ess_mean"] = round(entry["ess_mean"], 1)
        circuits.setdefault(circuit, {}).setdefault(
            metric, {})[entry["estimator"]] = record

    return {
        "schema_version": 1,
        "generated_by": "tools/bench_to_json.py --estimators",
        "benchmark": "bench_estimator_variance",
        "replications": raw.get("replications"),
        "samples_per_run": raw.get("samples_per_run"),
        "note": ("variance_reduction = var(plain) / var(estimator) across "
                 "replications = sample-count reduction at equal variance"),
        "circuits": circuits,
    }


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("input", nargs="?", default="-",
                        help="raw benchmark JSON file (default: stdin)")
    parser.add_argument("-o", "--output", default="-",
                        help="output path (default: stdout)")
    parser.add_argument("--estimators", action="store_true",
                        help="input is bench_estimator_variance JSON; emit "
                             "variance-reduction factors")
    args = parser.parse_args(argv)

    if args.input == "-":
        raw = json.load(sys.stdin)
    else:
        with open(args.input) as f:
            raw = json.load(f)

    if args.estimators:
        try:
            result = distill_estimators(raw)
        except ValueError as err:
            print(f"bench_to_json: {err}", file=sys.stderr)
            return 1
    else:
        result = distill(raw)
        if not result["circuits"]:
            print("bench_to_json: no BM_MonteCarloBatched entries in input",
                  file=sys.stderr)
            return 1

    text = json.dumps(result, indent=2) + "\n"
    if args.output == "-":
        sys.stdout.write(text)
    else:
        with open(args.output, "w") as f:
            f.write(text)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
