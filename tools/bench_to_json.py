#!/usr/bin/env python3
"""Convert Google Benchmark JSON output into a compact BENCH_mc.json.

Reads the JSON emitted by

    bench_fig5_runtime --benchmark_filter='BM_MonteCarloBatched' \
        --benchmark_format=json

from a file (or stdin) and distills the Monte-Carlo throughput series into
samples/sec per (circuit, engine), plus the batched/scalar speedup per
circuit.  When the run used --benchmark_repetitions, the median aggregate is
preferred; otherwise the median over the plain iteration entries is taken.

Usage:
    bench_to_json.py [raw_benchmark.json] [-o BENCH_mc.json]

With no -o the result is printed to stdout.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys


def _engine_of(entry: dict) -> str:
    # The benchmark exports a "batched" counter: 1 = batched SoA engine,
    # 0 = scalar per-sample reference.
    return "batched" if entry.get("batched", 0.0) > 0.5 else "scalar"


def distill(raw: dict) -> dict:
    """Reduce benchmark entries to {circuit: {engine: samples_per_second}}."""
    # (circuit, engine) -> list of items_per_second; medians are stored
    # separately and win over per-iteration samples when present.
    samples: dict[tuple[str, str], list[float]] = {}
    medians: dict[tuple[str, str], float] = {}
    for entry in raw.get("benchmarks", []):
        if not entry.get("name", "").startswith("BM_MonteCarloBatched"):
            continue
        if "items_per_second" not in entry:
            continue
        circuit = entry.get("label", "")
        if not circuit:
            continue
        key = (circuit, _engine_of(entry))
        if entry.get("run_type") == "aggregate":
            if entry.get("aggregate_name") == "median":
                medians[key] = entry["items_per_second"]
            continue
        samples.setdefault(key, []).append(entry["items_per_second"])

    circuits: dict[str, dict] = {}
    for key in sorted(set(samples) | set(medians)):
        circuit, engine = key
        sps = medians.get(key)
        if sps is None:
            sps = statistics.median(samples[key])
        circuits.setdefault(circuit, {})[engine] = {
            "samples_per_second": round(sps, 1)
        }
    for circuit, engines in circuits.items():
        if "scalar" in engines and "batched" in engines:
            scalar = engines["scalar"]["samples_per_second"]
            batched = engines["batched"]["samples_per_second"]
            if scalar > 0:
                engines["speedup_batched_vs_scalar"] = round(batched / scalar, 2)

    context = raw.get("context", {})
    return {
        "schema_version": 1,
        "generated_by": "tools/bench_to_json.py",
        "benchmark": "bench_fig5_runtime:BM_MonteCarloBatched",
        "unit": "monte-carlo samples per second, single thread",
        "host": {
            "num_cpus": context.get("num_cpus"),
            "mhz_per_cpu": context.get("mhz_per_cpu"),
            "library_build_type": context.get("library_build_type"),
        },
        "circuits": circuits,
        # Historical anchor for the perf trajectory: the scalar engine's
        # single-thread throughput on c7552p before the batched-SoA PR
        # (Box-Muller normals, per-sample scratch allocation). See
        # EXPERIMENTS.md F5 and docs/PERFORMANCE.md.
        "baseline": {
            "pre_batched_pr_scalar": {
                "c7552p": {"samples_per_second": 3593.0}
            }
        },
    }


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("input", nargs="?", default="-",
                        help="Google Benchmark JSON file (default: stdin)")
    parser.add_argument("-o", "--output", default="-",
                        help="output path (default: stdout)")
    args = parser.parse_args(argv)

    if args.input == "-":
        raw = json.load(sys.stdin)
    else:
        with open(args.input) as f:
            raw = json.load(f)

    result = distill(raw)
    if not result["circuits"]:
        print("bench_to_json: no BM_MonteCarloBatched entries in input",
              file=sys.stderr)
        return 1

    text = json.dumps(result, indent=2) + "\n"
    if args.output == "-":
        sys.stdout.write(text)
    else:
        with open(args.output, "w") as f:
            f.write(text)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
