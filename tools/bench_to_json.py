#!/usr/bin/env python3
"""Convert raw benchmark JSON output into a compact BENCH_*.json.

Default mode reads the Google Benchmark JSON emitted by

    bench_fig5_runtime --benchmark_filter='BM_MonteCarloBatched' \
        --benchmark_format=json

from a file (or stdin) and distills the Monte-Carlo throughput series into
samples/sec per (circuit, engine), plus the batched/scalar speedup per
circuit.  When the run used --benchmark_repetitions, the median aggregate is
preferred; otherwise the median over the plain iteration entries is taken.

With --estimators the input is instead the JSON document printed by
bench_estimator_variance (across-replication variance per circuit, metric,
estimator) and the output is BENCH_estimators.json: the same means and
variances plus the variance-reduction factor of every variance-reduced
estimator against the plain-MC baseline of its (circuit, metric).  That
factor is the sample-count reduction at equal variance, and it is what the
CI estimator-quality gate pins floors on.

With --opt the input is the JSON document printed by bench_opt_throughput
(wall seconds and optimizer iterations per second for the flat-SoA and the
scalar engine on every benchmarked circuit) and the output is
BENCH_opt.json: per-circuit seconds / moves-per-second per engine plus the
flat/scalar speedup — the number the CI optimizer-perf gate floors.

Timing artifacts from debug builds are meaningless for the perf trajectory,
so any input that carries a build-type marker saying "debug" is refused
unless --allow-debug is passed (intended for pipeline debugging only; the
output then records the debug provenance honestly).

Usage:
    bench_to_json.py [raw_benchmark.json] [-o BENCH_mc.json]
    bench_to_json.py --estimators [raw_estimators.json] \
        [-o BENCH_estimators.json]
    bench_to_json.py --opt [raw_opt.json] [-o BENCH_opt.json]

With no -o the result is printed to stdout.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys


def _engine_of(entry: dict) -> str:
    # The benchmark exports a "batched" counter: 1 = batched SoA engine,
    # 0 = scalar per-sample reference.
    return "batched" if entry.get("batched", 0.0) > 0.5 else "scalar"


def distill(raw: dict) -> dict:
    """Reduce benchmark entries to {circuit: {engine: samples_per_second}}."""
    # (circuit, engine) -> list of items_per_second; medians are stored
    # separately and win over per-iteration samples when present.
    samples: dict[tuple[str, str], list[float]] = {}
    medians: dict[tuple[str, str], float] = {}
    for entry in raw.get("benchmarks", []):
        if not entry.get("name", "").startswith("BM_MonteCarloBatched"):
            continue
        if "items_per_second" not in entry:
            continue
        circuit = entry.get("label", "")
        if not circuit:
            continue
        key = (circuit, _engine_of(entry))
        if entry.get("run_type") == "aggregate":
            if entry.get("aggregate_name") == "median":
                medians[key] = entry["items_per_second"]
            continue
        samples.setdefault(key, []).append(entry["items_per_second"])

    circuits: dict[str, dict] = {}
    for key in sorted(set(samples) | set(medians)):
        circuit, engine = key
        sps = medians.get(key)
        if sps is None:
            sps = statistics.median(samples[key])
        circuits.setdefault(circuit, {})[engine] = {
            "samples_per_second": round(sps, 1)
        }
    for circuit, engines in circuits.items():
        if "scalar" in engines and "batched" in engines:
            scalar = engines["scalar"]["samples_per_second"]
            batched = engines["batched"]["samples_per_second"]
            if scalar > 0:
                engines["speedup_batched_vs_scalar"] = round(batched / scalar, 2)

    context = raw.get("context", {})
    return {
        "schema_version": 1,
        "generated_by": "tools/bench_to_json.py",
        "benchmark": "bench_fig5_runtime:BM_MonteCarloBatched",
        "unit": "monte-carlo samples per second, single thread",
        "host": {
            "num_cpus": context.get("num_cpus"),
            "mhz_per_cpu": context.get("mhz_per_cpu"),
            # The build type of the timed statleak code (stamped by the
            # bench via AddCustomContext); the harness library's own build
            # type is kept for completeness but is not the provenance
            # marker — see build_type_of().
            "build_type": context.get("statleak_build_type"),
            "library_build_type": context.get("library_build_type"),
        },
        "circuits": circuits,
        # Historical anchor for the perf trajectory: the scalar engine's
        # single-thread throughput on c7552p before the batched-SoA PR
        # (Box-Muller normals, per-sample scratch allocation). See
        # EXPERIMENTS.md F5 and docs/PERFORMANCE.md.
        "baseline": {
            "pre_batched_pr_scalar": {
                "c7552p": {"samples_per_second": 3593.0}
            }
        },
    }


def distill_estimators(raw: dict) -> dict:
    """Reduce bench_estimator_variance output to variance-reduction factors.

    Output shape:
        circuits.<circuit>.<metric>.plain = {mean, variance}
        circuits.<circuit>.<metric>.<estimator> =
            {mean, variance, variance_reduction[, ess_mean]}
    """
    if raw.get("bench") != "estimator_variance":
        raise ValueError("input is not bench_estimator_variance output")

    baseline: dict[tuple[str, str], float] = {}
    for entry in raw.get("results", []):
        if entry["estimator"] == "plain":
            baseline[(entry["circuit"], entry["metric"])] = entry["variance"]

    circuits: dict[str, dict] = {}
    for entry in raw.get("results", []):
        circuit, metric = entry["circuit"], entry["metric"]
        record = {
            "mean": entry["mean"],
            "variance": entry["variance"],
        }
        if entry["estimator"] != "plain":
            key = (circuit, metric)
            if key not in baseline:
                raise ValueError(
                    f"no plain baseline for {circuit}/{metric}")
            if entry["variance"] > 0:
                record["variance_reduction"] = round(
                    baseline[key] / entry["variance"], 2)
            else:
                record["variance_reduction"] = float("inf")
            # ESS only means something for weighted (importance-sampled)
            # estimators; QMC/CV runs keep every weight at 1.
            if entry.get("ess_mean", 0) and \
                    entry["ess_mean"] != raw.get("samples_per_run"):
                record["ess_mean"] = round(entry["ess_mean"], 1)
        circuits.setdefault(circuit, {}).setdefault(
            metric, {})[entry["estimator"]] = record

    return {
        "schema_version": 1,
        "generated_by": "tools/bench_to_json.py --estimators",
        "benchmark": "bench_estimator_variance",
        "replications": raw.get("replications"),
        "samples_per_run": raw.get("samples_per_run"),
        "note": ("variance_reduction = var(plain) / var(estimator) across "
                 "replications = sample-count reduction at equal variance"),
        "circuits": circuits,
    }


def distill_opt(raw: dict) -> dict:
    """Reduce bench_opt_throughput output to per-circuit engine entries.

    Output shape:
        circuits.<circuit>.<engine> =
            {seconds, iterations, commits, moves_per_second}
        circuits.<circuit>.speedup_flat_vs_scalar
    """
    if raw.get("bench") != "opt_throughput":
        raise ValueError("input is not bench_opt_throughput output")

    circuits: dict[str, dict] = {}
    for entry in raw.get("results", []):
        circuits.setdefault(entry["circuit"], {})[entry["engine"]] = {
            "num_cells": entry["num_cells"],
            "seconds": round(entry["seconds"], 4),
            "iterations": entry["iterations"],
            "commits": entry["commits"],
            "moves_per_second": round(entry["moves_per_second"], 1),
        }
    for circuit, engines in circuits.items():
        if "flat" in engines and "scalar" in engines:
            flat = engines["flat"]["seconds"]
            if flat > 0:
                engines["speedup_flat_vs_scalar"] = round(
                    engines["scalar"]["seconds"] / flat, 2)

    return {
        "schema_version": 1,
        "generated_by": "tools/bench_to_json.py --opt",
        "benchmark": "bench_opt_throughput",
        "unit": ("statistical-optimizer wall seconds and loop iterations "
                 "per second, single thread, min over back-to-back "
                 "repetitions"),
        "build_type": raw.get("build_type"),
        "threads": raw.get("threads"),
        "note": ("flat and scalar walk bit-identical trajectories "
                 "(asserted by the benchmark, pinned by "
                 "tests/opt_trajectory_test.cpp); the speedup is pure "
                 "engine layout + batched pricing"),
        "circuits": circuits,
    }


def build_type_of(raw: dict) -> str | None:
    """Best-effort build-type marker of a raw benchmark document.

    Preference order: the document's own "build_type" (our JSON benches),
    then the custom "statleak_build_type" context key (google-benchmark
    benches stamp the build type of the TIMED code there), and only then
    google-benchmark's "library_build_type" — which describes the harness
    library, not the code under test (the distro package reports "debug"
    even under a Release build of statleak).
    """
    context = raw.get("context", {})
    for marker in (raw.get("build_type"),
                   context.get("statleak_build_type"),
                   context.get("library_build_type")):
        if isinstance(marker, str):
            return marker
    return None


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("input", nargs="?", default="-",
                        help="raw benchmark JSON file (default: stdin)")
    parser.add_argument("-o", "--output", default="-",
                        help="output path (default: stdout)")
    parser.add_argument("--estimators", action="store_true",
                        help="input is bench_estimator_variance JSON; emit "
                             "variance-reduction factors")
    parser.add_argument("--opt", action="store_true",
                        help="input is bench_opt_throughput JSON; emit "
                             "flat-vs-scalar optimizer speedups")
    parser.add_argument("--allow-debug", action="store_true",
                        help="accept timing input from a debug build "
                             "(refused by default: debug timings are not "
                             "comparable perf artifacts)")
    args = parser.parse_args(argv)

    if args.input == "-":
        raw = json.load(sys.stdin)
    else:
        with open(args.input) as f:
            raw = json.load(f)

    build = build_type_of(raw)
    if build is not None and "debug" in build.lower() and \
            not args.allow_debug:
        print("bench_to_json: input was produced by a debug build "
              f"(build type {build!r}); timing artifacts must come from a "
              "Release build. Pass --allow-debug to override.",
              file=sys.stderr)
        return 1

    if args.estimators:
        try:
            result = distill_estimators(raw)
        except ValueError as err:
            print(f"bench_to_json: {err}", file=sys.stderr)
            return 1
    elif args.opt:
        try:
            result = distill_opt(raw)
        except ValueError as err:
            print(f"bench_to_json: {err}", file=sys.stderr)
            return 1
    else:
        result = distill(raw)
        if not result["circuits"]:
            print("bench_to_json: no BM_MonteCarloBatched entries in input",
                  file=sys.stderr)
            return 1

    text = json.dumps(result, indent=2) + "\n"
    if args.output == "-":
        sys.stdout.write(text)
    else:
        with open(args.output, "w") as f:
            f.write(text)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
