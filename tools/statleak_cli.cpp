/// \file statleak_cli.cpp
/// \brief The statleak command-line driver.
///
/// Subcommands (run with no arguments for usage):
///
///   gen <circuit> -o out.bench            generate a circuit
///   stats <netlist.bench>                 structural statistics
///   analyze <netlist.bench> [options]     STA + SSTA + leakage report
///   optimize <netlist.bench> [options]    run a flow, write .impl sidecar
///   mc <netlist.bench> [options]          Monte-Carlo report
///
/// Circuits for `gen`: any ISCAS85 proxy name (c432 .. c7552), or
/// rca<N> / cla<N> / csel<N> / mult<N> / alu<N> / parity<N> / rand<N>.
///
/// The optimize/analyze/mc commands compose through .impl sidecars:
///
///   statleak gen c880 -o c880.bench
///   statleak optimize c880.bench --tmax-factor 1.15 --eta 0.99 -o c880.impl
///   statleak analyze c880.bench --impl c880.impl --tmax 1200
///   statleak mc c880.bench --impl c880.impl --tmax 1200 --samples 10000

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "gen/arithmetic.hpp"
#include "gen/prefix.hpp"
#include "gen/proxy.hpp"
#include "gen/random_dag.hpp"
#include "gen/structures.hpp"
#include "mc/monte_carlo.hpp"
#include "mlv/mlv.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/impl_io.hpp"
#include "opt/deterministic.hpp"
#include "opt/metrics.hpp"
#include "opt/statistical.hpp"
#include "report/flow.hpp"
#include "sta/sta.hpp"
#include "tech/process.hpp"
#include "util/error.hpp"
#include "util/table.hpp"

namespace {

using namespace statleak;

int usage() {
  std::cerr <<
      R"(statleak — statistical leakage optimization under process variation

usage:
  statleak gen <circuit> [-o out.bench]
  statleak stats <netlist.bench>
  statleak analyze <netlist.bench> [--impl f.impl] [--tmax ps] [--node 100|70]
  statleak optimize <netlist.bench> [--flow stat|det] [--tmax ps |
           --tmax-factor f] [--eta y] [--corner k] [--node 100|70]
           [--threads n] [-o out.impl] [--write-bench out.bench]
  statleak mc <netlist.bench> [--impl f.impl] [--tmax ps] [--samples n]
           [--seed s] [--threads n] [--node 100|70]
  statleak mlv <netlist.bench> [--impl f.impl] [--trials n] [--node 100|70]

circuits for gen: c432 c499 c880 c1355 c1908 c2670 c3540 c5315 c6288 c7552
                  rca<N> cla<N> csel<N> ks<N> mult<N> wal<N> alu<N> parity<N> rand<N>
)";
  return 2;
}

/// Minimal flag parser: positionals plus --key value / -o value pairs.
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 2; i < argc; ++i) {
      std::string tok = argv[i];
      if (tok.rfind("--", 0) == 0 || tok == "-o") {
        const std::string key = tok == "-o" ? "--out" : tok;
        STATLEAK_CHECK(i + 1 < argc, "flag " + tok + " needs a value");
        flags_.emplace_back(key, argv[++i]);
      } else {
        positional_.push_back(tok);
      }
    }
  }

  std::optional<std::string> get(const std::string& key) const {
    for (const auto& [k, v] : flags_) {
      if (k == key) return v;
    }
    return std::nullopt;
  }
  double get_double(const std::string& key, double fallback) const {
    const auto v = get(key);
    return v ? std::atof(v->c_str()) : fallback;
  }
  long get_long(const std::string& key, long fallback) const {
    const auto v = get(key);
    return v ? std::atol(v->c_str()) : fallback;
  }
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::vector<std::pair<std::string, std::string>> flags_;
  std::vector<std::string> positional_;
};

Circuit generate(const std::string& spec) {
  const auto numeric_suffix = [&](const std::string& prefix) -> int {
    return std::atoi(spec.substr(prefix.size()).c_str());
  };
  if (spec.rfind("rca", 0) == 0) {
    return make_ripple_carry_adder(numeric_suffix("rca"));
  }
  if (spec.rfind("cla", 0) == 0) {
    return make_carry_lookahead_adder(numeric_suffix("cla"));
  }
  if (spec.rfind("csel", 0) == 0) {
    return make_carry_select_adder(numeric_suffix("csel"));
  }
  if (spec.rfind("mult", 0) == 0) {
    return make_array_multiplier(numeric_suffix("mult"));
  }
  if (spec.rfind("ks", 0) == 0) {
    return make_kogge_stone_adder(numeric_suffix("ks"));
  }
  if (spec.rfind("wal", 0) == 0) {
    return make_wallace_multiplier(numeric_suffix("wal"));
  }
  if (spec.rfind("alu", 0) == 0) return make_alu(numeric_suffix("alu"));
  if (spec.rfind("parity", 0) == 0) {
    return make_parity_tree(numeric_suffix("parity"));
  }
  if (spec.rfind("rand", 0) == 0) {
    RandomDagSpec r;
    r.num_gates = numeric_suffix("rand");
    return make_random_dag(r);
  }
  return iscas85_proxy(spec);  // throws with a clear message if unknown
}

CellLibrary make_library(const Args& args) {
  const long node = args.get_long("--node", 100);
  STATLEAK_CHECK(node == 100 || node == 70, "--node must be 100 or 70");
  return CellLibrary(node == 100 ? generic_100nm() : generic_70nm());
}

void print_metrics(const CircuitMetrics& m, double t_max) {
  Table t({"metric", "value"});
  const auto row = [&](const std::string& k, const std::string& v) {
    t.begin_row();
    t.add(k);
    t.add(v);
  };
  row("delay target", format_fixed(t_max, 1) + " ps");
  row("nominal delay", format_fixed(m.nominal_delay_ps, 1) + " ps");
  row("3-sigma corner delay", format_fixed(m.corner3_delay_ps, 1) + " ps");
  row("delay mean / sigma (SSTA)",
      format_fixed(m.ssta_delay_mean_ps, 1) + " / " +
          format_fixed(m.ssta_delay_sigma_ps, 1) + " ps");
  row("timing yield (SSTA)", format_fixed(m.timing_yield, 4));
  row("leakage nominal", format_si(m.leakage_nominal_na * 1e-9, "A"));
  row("leakage mean", format_si(m.leakage_mean_na * 1e-9, "A"));
  row("leakage p95 / p99", format_si(m.leakage_p95_na * 1e-9, "A") + " / " +
                               format_si(m.leakage_p99_na * 1e-9, "A"));
  row("HVT cells", std::to_string(m.hvt_count) + " / " +
                       std::to_string(m.cell_count) + " (" +
                       format_fixed(100.0 * m.hvt_fraction, 1) + " %)");
  row("area", format_fixed(m.area_um, 1) + " um device width");
  t.print(std::cout);
}

Circuit load_circuit(const Args& args) {
  STATLEAK_CHECK(!args.positional().empty(), "missing netlist argument");
  Circuit c = read_bench_file(args.positional()[0]);
  if (const auto impl = args.get("--impl")) {
    const std::size_t updated = read_impl_file(*impl, c);
    std::cout << "applied " << updated << " implementation entries from "
              << *impl << "\n";
  }
  return c;
}

int cmd_gen(const Args& args) {
  STATLEAK_CHECK(!args.positional().empty(), "gen needs a circuit spec");
  const Circuit c = generate(args.positional()[0]);
  const std::string out =
      args.get("--out").value_or(c.name() + ".bench");
  std::ofstream file(out);
  STATLEAK_CHECK(file.good(), "cannot write " + out);
  write_bench(file, c);
  std::cout << "wrote " << out << " (" << c.num_cells() << " cells)\n";
  return 0;
}

int cmd_stats(const Args& args) {
  const Circuit c = load_circuit(args);
  const CircuitStats s = circuit_stats(c);
  std::cout << c.name() << ": " << s.num_cells << " cells, " << s.num_inputs
            << " PIs, " << s.num_outputs << " POs, depth " << s.depth
            << ", avg fanout " << format_fixed(s.avg_fanout, 2) << "\n";
  return 0;
}

int cmd_analyze(const Args& args) {
  Circuit c = load_circuit(args);
  const CellLibrary lib = make_library(args);
  const VariationModel var = VariationModel::typical_100nm();
  const double t_max = args.get_double(
      "--tmax", 1.1 * StaEngine(c, lib).critical_delay_ps());
  print_metrics(measure_metrics(c, lib, var, t_max), t_max);
  return 0;
}

int cmd_optimize(const Args& args) {
  Circuit c = load_circuit(args);
  const CellLibrary lib = make_library(args);
  const VariationModel var = VariationModel::typical_100nm();

  OptConfig cfg;
  if (const auto tmax = args.get("--tmax")) {
    cfg.t_max_ps = std::atof(tmax->c_str());
  } else {
    const double factor = args.get_double("--tmax-factor", 1.15);
    cfg.t_max_ps = factor * min_achievable_delay_ps(c, lib);
  }
  cfg.yield_target = args.get_double("--eta", 0.99);
  cfg.corner_k_sigma = args.get_double("--corner", 3.0);
  // 0 = all hardware threads; results are thread-count invariant.
  cfg.num_threads = static_cast<int>(args.get_long("--threads", 0));

  const std::string flow = args.get("--flow").value_or("stat");
  OptResult result;
  if (flow == "stat") {
    result = StatisticalOptimizer(lib, var, cfg).run(c);
  } else if (flow == "det") {
    result = DeterministicOptimizer(lib, var, cfg).run(c);
  } else {
    throw Error("--flow must be 'stat' or 'det'");
  }

  std::cout << flow << " flow on " << c.name() << ": " << result.note
            << " (" << result.sizing_commits << " upsizes, "
            << result.hvt_commits << " HVT swaps, "
            << result.downsize_commits << " downsizes)\n\n";
  print_metrics(measure_metrics(c, lib, var, cfg.t_max_ps), cfg.t_max_ps);

  const std::string out = args.get("--out").value_or(c.name() + ".impl");
  write_impl_file(out, c);
  std::cout << "\nwrote " << out << "\n";
  if (const auto bench_out = args.get("--write-bench")) {
    std::ofstream file(*bench_out);
    STATLEAK_CHECK(file.good(), "cannot write " + *bench_out);
    write_bench(file, c);
    std::cout << "wrote " << *bench_out << "\n";
  }
  return 0;
}

int cmd_mc(const Args& args) {
  Circuit c = load_circuit(args);
  const CellLibrary lib = make_library(args);
  const VariationModel var = VariationModel::typical_100nm();
  McConfig mc;
  mc.num_samples = static_cast<int>(args.get_long("--samples", 5000));
  mc.seed = static_cast<std::uint64_t>(args.get_long("--seed", 42));
  // 0 = all hardware threads; the sample streams are counter-based, so the
  // report is bit-identical whatever the thread count.
  mc.num_threads = static_cast<int>(args.get_long("--threads", 0));
  const double t_max = args.get_double(
      "--tmax", 1.1 * StaEngine(c, lib).critical_delay_ps());

  const McResult res = run_monte_carlo(c, lib, var, mc);
  const SampleSummary d = res.delay_summary();
  const SampleSummary l = res.leakage_summary();
  std::cout << mc.num_samples << " dies of " << c.name() << ":\n"
            << "  delay   mean " << format_fixed(d.mean, 1) << " ps, sigma "
            << format_fixed(d.stddev, 1) << " ps, p99 "
            << format_fixed(d.p99, 1) << " ps\n"
            << "  leakage mean " << format_si(l.mean * 1e-9, "A")
            << ", p99 " << format_si(l.p99 * 1e-9, "A") << "\n"
            << "  timing yield at " << format_fixed(t_max, 1) << " ps: "
            << format_fixed(res.timing_yield(t_max), 4) << " +/- "
            << format_fixed(res.yield_stderr(t_max), 4) << "\n";
  return 0;
}

int cmd_mlv(const Args& args) {
  Circuit c = load_circuit(args);
  const CellLibrary lib = make_library(args);
  MlvConfig cfg;
  cfg.random_trials = static_cast<int>(args.get_long("--trials", 128));
  const MlvResult res = find_min_leakage_vector(c, lib, cfg);
  std::cout << "standby leakage of " << c.name() << ": random mean "
            << format_si(res.mean_leakage_na * 1e-9, "A") << ", worst "
            << format_si(res.worst_leakage_na * 1e-9, "A")
            << ", min-leakage vector "
            << format_si(res.best_leakage_na * 1e-9, "A") << " ("
            << format_fixed(100.0 * res.saving_vs_mean(), 1)
            << " % below mean, " << res.evaluations << " evaluations)\n"
            << "vector: ";
  for (char bit : res.best_vector) std::cout << (bit ? '1' : '0');
  std::cout << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    const Args args(argc, argv);
    if (cmd == "gen") return cmd_gen(args);
    if (cmd == "stats") return cmd_stats(args);
    if (cmd == "analyze") return cmd_analyze(args);
    if (cmd == "optimize") return cmd_optimize(args);
    if (cmd == "mc") return cmd_mc(args);
    if (cmd == "mlv") return cmd_mlv(args);
    std::cerr << "unknown command '" << cmd << "'\n";
    return usage();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
