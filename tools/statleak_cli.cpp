/// \file statleak_cli.cpp
/// \brief The statleak command-line driver.
///
/// Subcommands (run with no arguments for the list, `<cmd> --help` for the
/// per-command flags):
///
///   gen <circuit> -o out.bench            generate a circuit
///   stats <netlist.bench>                 structural statistics
///   analyze <netlist.bench> [options]     STA + SSTA + leakage report
///   optimize <netlist.bench> [options]    run an optimizer, write .impl
///   mc <netlist.bench> [options]          Monte-Carlo report
///   sweep <netlist.bench> [options]       corner/temperature sweep surface
///   mlv <netlist.bench> [options]         minimum-leakage input vector
///   flow <netlist.bench> [options]        full det-vs-stat comparison
///   serve <netlist.bench> [options]       distributed Monte-Carlo campaign
///   worker [options]                      campaign worker process
///
/// Circuits for `gen`: any ISCAS85 proxy name (c432 .. c7552), or
/// rca<N> / cla<N> / csel<N> / ks<N> / mult<N> / wal<N> / alu<N> /
/// parity<N> / rand<N>.
///
/// Every subcommand accepts `--report-json <path>` (write a versioned JSON
/// run report: config echo, phase wall times, counters, convergence traces)
/// and `--trace` (dump the trace streams as JSON to stdout). Execution
/// knobs come from one shared flag table, so they are spelled the same
/// everywhere they apply: `--seed s`, `--threads n`, `--deadline ms`.
///
/// The command bodies live in the api/driver.hpp facade; this file only
/// parses flags, forwards to the facade, and prints. The distributed
/// worker drives the same facade, so `statleak mc` and a `statleak serve`
/// campaign share every line of engine and statistics code (see
/// docs/DISTRIBUTED.md).
///
/// The optimize/analyze/mc commands compose through .impl sidecars:
///
///   statleak gen c880 -o c880.bench
///   statleak optimize c880.bench --tmax-factor 1.15 --eta 0.99 -o c880.impl
///   statleak analyze c880.bench --impl c880.impl --tmax 1200
///   statleak mc c880.bench --impl c880.impl --tmax 1200 --samples 10000
///
/// Exit codes (stable contract, see docs/ROBUSTNESS.md):
///   0  success
///   1  internal error (unexpected exception)
///   2  usage error (unknown flag/command, missing argument)
///   3  input error (unreadable/malformed netlist, impl, or config;
///      includes numerical-health failures under the default fail policy)
///   4  deadline expired (--deadline budget ran out; partial results and
///      the run report — flagged "completed": false — are still written)
///   5  corrupt or mismatched checkpoint (--checkpoint rejected)
///   6  distributed campaign failure (fleet could not be set up, or every
///      worker was lost with shards still queued)

#include <charconv>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "statleak.hpp"

namespace {

using namespace statleak;

/// One `--flag` a command understands.
struct FlagSpec {
  const char* name;        ///< "--tmax" (the "-o" alias maps to "--out")
  bool takes_value;        ///< false = boolean switch
  const char* value_name;  ///< shown in help, e.g. "ps"
  const char* help;
};

struct CommandSpec {
  const char* name;
  const char* positional;  ///< e.g. "<netlist.bench>", "" for none
  const char* blurb;
  std::vector<FlagSpec> flags;
};

/// Flags every subcommand accepts, appended to each spec at lookup time.
const std::vector<FlagSpec>& common_flags() {
  static const std::vector<FlagSpec> kCommon = {
      {"--report-json", true, "path",
       "write a schema-versioned JSON run report"},
      {"--trace", false, "", "dump convergence trace streams to stdout"},
  };
  return kCommon;
}

/// The shared execution-knob table (ExecConfig spellings). Every command
/// that runs an engine splices these in — including the serve/worker pair —
/// so `--seed/--threads/--deadline` mean the same thing everywhere.
const FlagSpec& exec_flag(const char* name) {
  static const std::vector<FlagSpec> kExec = {
      {"--seed", true, "s", "RNG seed"},
      {"--threads", true, "n",
       "worker threads, 0 = all cores (default 0); "
       "results are thread-count invariant"},
      {"--deadline", true, "ms",
       "wall-clock budget in ms, 0 = none (default); "
       "a clean early stop exits with code 4"},
  };
  for (const FlagSpec& f : kExec) {
    if (std::string(f.name) == name) return f;
  }
  std::cerr << "internal: unknown exec flag " << name << "\n";
  std::abort();
}

/// The Monte-Carlo engine flags, shared verbatim between `mc` (single
/// host) and `serve` (distributed): the two commands accept the same study
/// and must produce byte-identical populations.
std::vector<FlagSpec> mc_engine_flags() {
  return {
      {"--impl", true, "f.impl",
       "apply an implementation sidecar before running"},
      {"--tmax", true, "ps", "delay target (default 1.1 * nominal)"},
      {"--samples", true, "n", "number of dies (default 5000)"},
      {"--batch", true, "b",
       "samples per kernel block, 0 = auto (default; results identical)"},
      exec_flag("--seed"),
      exec_flag("--threads"),
      exec_flag("--deadline"),
      {"--checkpoint", true, "path",
       "append-only checkpoint file; resumes it when it already exists"},
      {"--checkpoint-every", true, "n",
       "checkpoint flush cadence in samples per worker (default 4096)"},
      {"--health", true, "fail|quarantine",
       "non-finite sample policy (default fail)"},
      {"--sampler", true, "pseudo|sobol",
       "global-dimension sampler (default pseudo); sobol = scrambled QMC"},
      {"--importance", true, "auto|off",
       "importance-sample the timing tail at --tmax (default off); "
       "estimates stay unbiased via exact likelihood weights"},
      {"--cv", false, "", "SSTA control variate for leakage mean/quantiles"},
      {"--node", true, "preset",
       "technology node preset name, or 100|70 (default generic-100nm)"},
      {"--temp", true, "K",
       "analysis temperature in kelvin (default: the node's calibration "
       "temperature)"},
      {"--vdd", true, "V", "supply voltage (default: the node's nominal Vdd)"},
      {"--sigma-scale", true, "x",
       "variation sigma multiplier (default 1.0 = typical model)"},
      {"--dump-samples", true, "path",
       "write surviving per-sample 'delay leakage' pairs as exact "
       "round-trip text (byte-comparable across hosts/threads/shards)"},
  };
}

/// The `sweep` flag table: the mc engine knobs minus the single-corner
/// flags (--node/--temp/--vdd/--sigma-scale — the grid owns every cell's
/// corner) plus the grid axes and the surface output.
std::vector<FlagSpec> sweep_flags() {
  std::vector<FlagSpec> flags = {
      {"--impl", true, "f.impl",
       "apply an implementation sidecar before running"},
      {"--tmax", true, "ps",
       "delay target for every cell (default: 1.1 * that corner's nominal)"},
      {"--nodes", true, "a,b",
       "comma-separated node presets (default generic-100nm)"},
      {"--temps", true, "K,K",
       "comma-separated temperatures in kelvin (0 = calibrated default)"},
      {"--vdds", true, "V,V",
       "comma-separated supplies in volts (0 = nominal Vdd)"},
      {"--sigmas", true, "x,x",
       "comma-separated variation sigma multipliers (default 1)"},
      {"--surface-json", true, "path",
       "write the per-cell yield/leakage surface as versioned JSON"},
      {"--dump-samples", true, "prefix",
       "write each cell's per-sample pairs to <prefix>.cell<i> "
       "(byte-comparable against a standalone mc run at that corner)"},
  };
  for (const FlagSpec& f : mc_engine_flags()) {
    const std::string name = f.name;
    if (name == "--impl" || name == "--tmax" || name == "--node" ||
        name == "--temp" || name == "--vdd" || name == "--sigma-scale" ||
        name == "--importance" || name == "--dump-samples") {
      continue;  // replaced above, or owned by the grid axes
    }
    if (name == "--deadline") {
      flags.push_back({"--deadline", true, "ms",
                       "wall-clock budget for the whole grid, 0 = none; "
                       "a clean early stop keeps finished cells (exit 4)"});
      continue;
    }
    if (name == "--checkpoint") {
      flags.push_back({"--checkpoint", true, "prefix",
                       "per-cell checkpoint prefix: cell i resumes "
                       "<prefix>.cell<i> when it exists"});
      continue;
    }
    flags.push_back(f);
  }
  return flags;
}

std::vector<CommandSpec> command_specs() {
  const FlagSpec impl = {"--impl", true, "f.impl",
                         "apply an implementation sidecar before running"};
  const FlagSpec node = {"--node", true, "preset",
                         "technology node preset name, or 100|70 "
                         "(default generic-100nm)"};

  std::vector<FlagSpec> serve_flags = mc_engine_flags();
  const std::vector<FlagSpec> dist_flags = {
      {"--workers", true, "n",
       "fleet size: pool processes to fork, or TCP peers to wait for "
       "(default 2)"},
      {"--worker-threads", true, "n",
       "threads per worker (default: the --threads value, else 1)"},
      {"--listen", true, "host:port",
       "wait for remote workers there instead of forking a local pool "
       "(port 0 = pick a free port)"},
      {"--port-file", true, "path",
       "with --listen, write the bound port here once listening"},
      {"--heartbeat", true, "ms",
       "per-worker silence budget before re-dispatching its shard "
       "(default 30000; 0 disables)"},
      {"--shards-per-worker", true, "n",
       "dispatch granularity (default 4 shards per worker)"},
  };
  serve_flags.insert(serve_flags.end(), dist_flags.begin(), dist_flags.end());

  return {
      {"gen", "<circuit>", "generate a benchmark circuit",
       {{"--out", true, "out.bench", "output netlist (-o works too)"},
        {"--seed", true, "s", "seed for rand<N> circuits (default 1)"}}},
      {"stats", "<netlist.bench>", "structural statistics", {impl}},
      {"analyze", "<netlist.bench>", "STA + SSTA + leakage report",
       {impl,
        {"--tmax", true, "ps", "delay target (default 1.1 * nominal)"},
        node}},
      {"optimize", "<netlist.bench>", "optimize and write an .impl sidecar",
       {impl,
        {"--flow", true, "stat|det", "optimizer to run (default stat)"},
        {"--tmax", true, "ps", "absolute delay target"},
        {"--tmax-factor", true, "f",
         "delay target as a multiple of D_min (default 1.15)"},
        {"--eta", true, "y", "timing-yield target (default 0.99)"},
        {"--corner", true, "k",
         "deterministic guard-band in sigmas (default 3)"},
        {"--opt-engine", true, "flat|scalar",
         "statistical scoring engine (default flat; same trajectory)"},
        {"--candidate-block", true, "k",
         "flat-engine candidate block size, 0 = auto (default)"},
        node,
        exec_flag("--seed"),
        exec_flag("--threads"),
        exec_flag("--deadline"),
        {"--checkpoint", true, "path",
         "durable move journal; resumes it bit-identically when it "
         "already exists"},
        {"--checkpoint-every", true, "n",
         "journal snapshot cadence in committed moves (default 256; "
         "trajectory-invariant)"},
        {"--out", true, "out.impl", "implementation sidecar (-o works too)"},
        {"--write-bench", true, "out.bench", "also write the netlist"}}},
      {"mc", "<netlist.bench>", "Monte-Carlo delay/leakage report",
       mc_engine_flags()},
      {"sweep", "<netlist.bench>",
       "corner/temperature sweep: one frozen circuit across a "
       "T x Vdd x node x sigma grid",
       sweep_flags()},
      {"mlv", "<netlist.bench>", "minimum-leakage standby vector search",
       {impl,
        {"--trials", true, "n", "random probes (default 128)"},
        exec_flag("--seed"),
        node}},
      {"flow", "<netlist.bench>", "full deterministic-vs-statistical flow",
       {impl,
        {"--tmax-factor", true, "f",
         "delay target as a multiple of D_min (default 1.15)"},
        {"--eta", true, "y", "timing-yield target (default 0.99)"},
        {"--corner", true, "k",
         "fixed deterministic guard-band (default 0)"},
        {"--auto-corner", false, "",
         "search for the smallest corner meeting eta"},
        {"--mc-samples", true, "n",
         "Monte-Carlo cross-check dies, 0 = skip (default 0)"},
        {"--batch", true, "b",
         "MC samples per kernel block, 0 = auto (default; results identical)"},
        {"--opt-engine", true, "flat|scalar",
         "statistical scoring engine (default flat; same trajectory)"},
        {"--candidate-block", true, "k",
         "flat-engine candidate block size, 0 = auto (default)"},
        exec_flag("--seed"),
        exec_flag("--threads"),
        exec_flag("--deadline"),
        {"--checkpoint", true, "path",
         "durable move journal for the statistical phase; resumes it "
         "bit-identically when it already exists"},
        {"--checkpoint-every", true, "n",
         "journal snapshot cadence in committed moves (default 256; "
         "trajectory-invariant)"},
        node}},
      {"serve", "<netlist.bench>",
       "distributed Monte-Carlo campaign (byte-identical to mc)",
       serve_flags},
      {"worker", "",
       "campaign worker (spawned by serve, or connected via --connect)",
       {{"--stdio", false, "",
         "speak the protocol on stdin/stdout (how serve's pool spawns it)"},
        {"--connect", true, "host:port", "connect to a listening serve"},
        exec_flag("--threads")}},
  };
}

int usage() {
  std::cerr <<
      R"(statleak — statistical leakage optimization under process variation

usage: statleak <command> [options]   (statleak <command> --help for flags)

commands:
)";
  for (const CommandSpec& c : command_specs()) {
    std::cerr << "  " << c.name << std::string(10 - std::string(c.name).size(), ' ')
              << c.positional << (*c.positional != '\0' ? "  " : "")
              << c.blurb << "\n";
  }
  std::cerr <<
      R"(
circuits for gen: c432 c499 c880 c1355 c1908 c2670 c3540 c5315 c6288 c7552
                  rca<N> cla<N> csel<N> ks<N> mult<N> wal<N> alu<N> parity<N> rand<N>
)";
  return 2;
}

void print_command_help(const CommandSpec& spec, std::ostream& os) {
  os << "usage: statleak " << spec.name;
  if (*spec.positional != '\0') os << " " << spec.positional;
  os << " [options]\n\n" << spec.blurb << "\n\noptions:\n";
  const auto print_flag = [&](const FlagSpec& f) {
    std::string left = std::string("  ") + f.name;
    if (f.takes_value) left += std::string(" <") + f.value_name + ">";
    if (left.size() < 26) left.resize(26, ' ');
    os << left << " " << f.help << "\n";
  };
  for (const FlagSpec& f : spec.flags) print_flag(f);
  for (const FlagSpec& f : common_flags()) print_flag(f);
}

/// A flag error: unknown flag, missing value, stray positional. Reported
/// with the per-command usage and exit code 2 (vs 1 for runtime errors).
struct UsageError : Error {
  using Error::Error;
};

/// Command-line parser validated against one command's FlagSpec list:
/// positionals plus --key [value] pairs, `-o` as an alias for `--out`,
/// unknown flags rejected with the offending spelling.
class Args {
 public:
  Args(const CommandSpec& spec, int argc, char** argv) {
    const auto find_spec = [&](const std::string& key) -> const FlagSpec* {
      for (const FlagSpec& f : spec.flags) {
        if (key == f.name) return &f;
      }
      for (const FlagSpec& f : common_flags()) {
        if (key == f.name) return &f;
      }
      return nullptr;
    };
    for (int i = 2; i < argc; ++i) {
      std::string tok = argv[i];
      if (tok == "-h" || tok == "--help") {
        help_ = true;
        continue;
      }
      if (tok.rfind("-", 0) != 0) {
        positional_.push_back(tok);
        continue;
      }
      const std::string key = tok == "-o" ? "--out" : tok;
      const FlagSpec* f = find_spec(key);
      if (f == nullptr) {
        throw UsageError("unknown flag '" + tok + "' for 'statleak " +
                         spec.name + "'");
      }
      if (f->takes_value) {
        if (i + 1 >= argc) throw UsageError("flag " + tok + " needs a value");
        flags_.emplace_back(key, argv[++i]);
      } else {
        flags_.emplace_back(key, "");
      }
    }
  }

  bool help_requested() const { return help_; }

  bool has(const std::string& key) const {
    for (const auto& [k, v] : flags_) {
      if (k == key) return true;
    }
    return false;
  }
  std::optional<std::string> get(const std::string& key) const {
    for (const auto& [k, v] : flags_) {
      if (k == key) return v;
    }
    return std::nullopt;
  }
  double get_double(const std::string& key, double fallback) const {
    const auto v = get(key);
    return v ? std::atof(v->c_str()) : fallback;
  }
  long get_long(const std::string& key, long fallback) const {
    const auto v = get(key);
    return v ? std::atol(v->c_str()) : fallback;
  }
  const std::vector<std::string>& positional() const { return positional_; }

  /// Echoes every flag the user actually passed into the report's config
  /// section, plus the command and positional arguments.
  void echo_config(const char* command, obs::Registry* obs) const {
    if (obs == nullptr) return;
    obs->note_config("command", command);
    for (std::size_t i = 0; i < positional_.size(); ++i) {
      obs->note_config(i == 0 ? "arg" : "arg" + std::to_string(i),
                       positional_[i]);
    }
    for (const auto& [k, v] : flags_) {
      const std::string key = k.substr(2);  // strip the leading "--"
      if (v.empty()) {
        obs->note_config_num(key, true);
      } else {
        obs->note_config(key, v);
      }
    }
  }

 private:
  std::vector<std::pair<std::string, std::string>> flags_;
  std::vector<std::string> positional_;
  bool help_ = false;
};

/// The per-invocation observability session: a registry that exists only
/// when --report-json or --trace asked for one (so the default path stays
/// on the engines' null-sink fast path), finalized after the command runs.
class ObsSession {
 public:
  ObsSession(const char* command, const Args& args)
      : report_path_(args.get("--report-json")),
        trace_(args.has("--trace")) {
    args.echo_config(command, reg());
  }

  /// nullptr when no report was requested — engines skip all bookkeeping.
  obs::Registry* reg() {
    return report_path_ || trace_ ? &registry_ : nullptr;
  }

  /// Writes the report file and/or dumps traces, after the command body.
  /// `os` is where the trace JSON and the confirmation line go — stdout
  /// normally, stderr for the worker (its stdout is the protocol channel).
  void finish(std::ostream& os = std::cout) {
    if (trace_) {
      obs::Json traces = obs::Json::object();
      for (const std::string& stream : registry_.trace_streams()) {
        obs::Json events = obs::Json::array();
        for (const obs::TraceEvent& e : registry_.trace_events(stream)) {
          obs::Json ev = obs::Json::object();
          ev.set("step", static_cast<double>(e.step));
          ev.set("phase", e.phase);
          ev.set("objective", e.objective);
          ev.set("yield", e.yield);
          ev.set("delay_ps", e.delay_ps);
          ev.set("commits", static_cast<double>(e.commits));
          ev.set("rejected", static_cast<double>(e.rejected));
          events.push_back(std::move(ev));
        }
        traces.set(stream, std::move(events));
      }
      os << traces.dump(2);
    }
    if (report_path_) {
      obs::write_run_report(*report_path_, registry_);
      os << "wrote report " << *report_path_ << "\n";
    }
  }

 private:
  obs::Registry registry_;
  std::optional<std::string> report_path_;
  bool trace_ = false;
};

Circuit generate(const std::string& spec, std::uint64_t seed) {
  const auto numeric_suffix = [&](const std::string& prefix) -> int {
    return std::atoi(spec.substr(prefix.size()).c_str());
  };
  if (spec.rfind("rca", 0) == 0) {
    return make_ripple_carry_adder(numeric_suffix("rca"));
  }
  if (spec.rfind("cla", 0) == 0) {
    return make_carry_lookahead_adder(numeric_suffix("cla"));
  }
  if (spec.rfind("csel", 0) == 0) {
    return make_carry_select_adder(numeric_suffix("csel"));
  }
  if (spec.rfind("mult", 0) == 0) {
    return make_array_multiplier(numeric_suffix("mult"));
  }
  if (spec.rfind("ks", 0) == 0) {
    return make_kogge_stone_adder(numeric_suffix("ks"));
  }
  if (spec.rfind("wal", 0) == 0) {
    return make_wallace_multiplier(numeric_suffix("wal"));
  }
  if (spec.rfind("alu", 0) == 0) return make_alu(numeric_suffix("alu"));
  if (spec.rfind("parity", 0) == 0) {
    return make_parity_tree(numeric_suffix("parity"));
  }
  if (spec.rfind("rand", 0) == 0) {
    RandomDagSpec r;
    r.num_gates = numeric_suffix("rand");
    r.seed = seed;
    return make_random_dag(r);
  }
  return iscas85_proxy(spec);  // throws with a clear message if unknown
}

CellLibrary make_library(const Args& args) {
  // process_node_by_name resolves preset names and the "100"/"70" aliases,
  // throwing a statleak::Error (exit 3) listing the known names otherwise.
  return CellLibrary(process_node_by_name(args.get("--node").value_or("100")));
}

void print_metrics(const CircuitMetrics& m, double t_max) {
  Table t({"metric", "value"});
  const auto row = [&](const std::string& k, const std::string& v) {
    t.begin_row();
    t.add(k);
    t.add(v);
  };
  row("delay target", format_fixed(t_max, 1) + " ps");
  row("nominal delay", format_fixed(m.nominal_delay_ps, 1) + " ps");
  row("3-sigma corner delay", format_fixed(m.corner3_delay_ps, 1) + " ps");
  row("delay mean / sigma (SSTA)",
      format_fixed(m.ssta_delay_mean_ps, 1) + " / " +
          format_fixed(m.ssta_delay_sigma_ps, 1) + " ps");
  row("timing yield (SSTA)", format_fixed(m.timing_yield, 4));
  row("leakage nominal", format_si(m.leakage_nominal_na * 1e-9, "A"));
  row("leakage mean", format_si(m.leakage_mean_na * 1e-9, "A"));
  row("leakage p95 / p99", format_si(m.leakage_p95_na * 1e-9, "A") + " / " +
                               format_si(m.leakage_p99_na * 1e-9, "A"));
  row("HVT cells", std::to_string(m.hvt_count) + " / " +
                       std::to_string(m.cell_count) + " (" +
                       format_fixed(100.0 * m.hvt_fraction, 1) + " %)");
  row("area", format_fixed(m.area_um, 1) + " um device width");
  t.print(std::cout);
}

Circuit load_circuit(const Args& args) {
  if (args.positional().empty()) {
    throw UsageError("missing netlist argument");
  }
  Circuit c = read_bench_file(args.positional()[0]);
  if (const auto impl = args.get("--impl")) {
    const std::size_t updated = read_impl_file(*impl, c);
    std::cout << "applied " << updated << " implementation entries from "
              << *impl << "\n";
  }
  return c;
}

/// Facade-driven commands resolve their input through StudyInput; the
/// "applied N implementation entries" line the file-loading commands print
/// is reproduced from the facade's count for stdout parity.
api::StudyInput study_input(const Args& args) {
  if (args.positional().empty()) {
    throw UsageError("missing netlist argument");
  }
  api::StudyInput in;
  in.bench_path = args.positional()[0];
  in.impl_path = args.get("--impl").value_or("");
  // Purely numeric spellings keep the node_nm path (and its 100|70
  // validation); anything else is a preset name for the registry.
  const std::string node = args.get("--node").value_or("100");
  int node_nm = 0;
  const auto res =
      std::from_chars(node.data(), node.data() + node.size(), node_nm);
  if (res.ec == std::errc() && res.ptr == node.data() + node.size()) {
    in.node_nm = node_nm;
  } else {
    in.node_name = node;
  }
  in.temperature_k = args.get_double("--temp", 0.0);
  in.vdd_v = args.get_double("--vdd", 0.0);
  in.sigma_scale = args.get_double("--sigma-scale", 1.0);
  return in;
}

/// Splits a comma-separated flag value into doubles with strict full-token
/// parsing: "373.15,398.15" is a grid axis, "373x" or ",," is a usage
/// error (exit 2), matching the flag-validation-before-I/O contract.
std::vector<double> parse_double_list(const Args& args, const char* flag,
                                      double fallback) {
  const auto value = args.get(flag);
  if (!value) return {fallback};
  std::vector<double> out;
  const std::string& s = *value;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t comma = s.find(',', start);
    const std::size_t end = comma == std::string::npos ? s.size() : comma;
    const std::string tok = s.substr(start, end - start);
    double v = 0.0;
    const auto res = std::from_chars(tok.data(), tok.data() + tok.size(), v);
    if (tok.empty() || res.ec != std::errc() ||
        res.ptr != tok.data() + tok.size()) {
      throw UsageError(std::string(flag) + ": '" + tok +
                       "' is not a number (expected a comma-separated list)");
    }
    out.push_back(v);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

/// Same splitting for the node-name axis; empty tokens are usage errors.
std::vector<std::string> parse_string_list(const Args& args, const char* flag,
                                           const char* fallback) {
  const auto value = args.get(flag);
  if (!value) return {fallback};
  std::vector<std::string> out;
  const std::string& s = *value;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t comma = s.find(',', start);
    const std::size_t end = comma == std::string::npos ? s.size() : comma;
    const std::string tok = s.substr(start, end - start);
    if (tok.empty()) {
      throw UsageError(std::string(flag) +
                       ": empty list entry (expected comma-separated names)");
    }
    out.push_back(tok);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

void report_impl(const Args& args, std::size_t entries) {
  if (const auto impl = args.get("--impl")) {
    std::cout << "applied " << entries << " implementation entries from "
              << *impl << "\n";
  }
}

int cmd_gen(const Args& args, ObsSession& session) {
  if (args.positional().empty()) {
    throw UsageError("gen needs a circuit spec");
  }
  obs::ScopedTimer timer(session.reg(), "gen.build");
  const Circuit c = generate(args.positional()[0],
                             static_cast<std::uint64_t>(
                                 args.get_long("--seed", 1)));
  timer.stop();
  const std::string out =
      args.get("--out").value_or(c.name() + ".bench");
  std::ofstream file(out);
  STATLEAK_CHECK(file.good(), "cannot write " + out);
  write_bench(file, c);
  std::cout << "wrote " << out << " (" << c.num_cells() << " cells)\n";
  if (obs::Registry* obs = session.reg()) {
    obs->set_gauge("gen.cells", static_cast<double>(c.num_cells()));
  }
  return 0;
}

int cmd_stats(const Args& args, ObsSession& session) {
  const Circuit c = load_circuit(args);
  obs::ScopedTimer timer(session.reg(), "stats.measure");
  const CircuitStats s = circuit_stats(c);
  timer.stop();
  std::cout << c.name() << ": " << s.num_cells << " cells, " << s.num_inputs
            << " PIs, " << s.num_outputs << " POs, depth " << s.depth
            << ", avg fanout " << format_fixed(s.avg_fanout, 2) << "\n";
  if (obs::Registry* obs = session.reg()) {
    obs->set_gauge("stats.cells", static_cast<double>(s.num_cells));
    obs->set_gauge("stats.depth", static_cast<double>(s.depth));
    obs->set_gauge("stats.avg_fanout", s.avg_fanout);
  }
  return 0;
}

int cmd_analyze(const Args& args, ObsSession& session) {
  Circuit c = load_circuit(args);
  const CellLibrary lib = make_library(args);
  const VariationModel var = VariationModel::typical_100nm();
  const double t_max = args.get_double(
      "--tmax", 1.1 * StaEngine(c, lib).critical_delay_ps());
  obs::ScopedTimer timer(session.reg(), "analyze.metrics");
  const CircuitMetrics m = measure_metrics(c, lib, var, t_max);
  timer.stop();
  print_metrics(m, t_max);
  if (obs::Registry* obs = session.reg()) {
    obs->set_gauge("analyze.t_max_ps", t_max);
    obs->set_gauge("analyze.timing_yield", m.timing_yield);
    obs->set_gauge("analyze.leakage_mean_na", m.leakage_mean_na);
    obs->set_gauge("analyze.leakage_p99_na", m.leakage_p99_na);
  }
  return 0;
}

/// Shared --opt-engine / --candidate-block decoding (optimize and flow).
/// Both are performance knobs of the statistical optimizer: the flat-SoA
/// engine and every block size walk the trajectory the scalar engine walks,
/// bit for bit (pinned by tests/opt_trajectory_test.cpp), so selecting one
/// never changes results — only wall time.
void parse_opt_engine(const Args& args, bool& flat_engine,
                      int& candidate_block) {
  const std::string engine = args.get("--opt-engine").value_or("flat");
  if (engine == "flat") {
    flat_engine = true;
  } else if (engine == "scalar") {
    flat_engine = false;
  } else {
    throw UsageError("--opt-engine must be 'flat' or 'scalar'");
  }
  const long block = args.get_long("--candidate-block", 0);
  if (block < 0) {
    throw UsageError("--candidate-block must be >= 0 (0 = auto)");
  }
  candidate_block = static_cast<int>(block);
}

/// The one-line engine echo printed by optimize and flow so logs record
/// which scoring path produced the (identical) result, and how fast.
std::string opt_engine_echo(bool flat_engine, int candidate_block) {
  std::string s = "scoring engine ";
  s += flat_engine ? "flat" : "scalar";
  if (flat_engine) {
    s += ", candidate block ";
    s += candidate_block > 0 ? std::to_string(candidate_block)
                             : std::string("auto");
  }
  return s;
}

/// Shared --checkpoint-every decoding for mc, optimize and flow: the
/// cadence is a positive count (samples for mc, committed moves for the
/// optimizer). Validated at the flag boundary, before any file I/O, so a
/// bad cadence is a usage error (exit 2) even when the netlist is also
/// missing or the checkpoint flag was not given at all.
int parse_checkpoint_every(const Args& args, long fallback) {
  const long every = args.get_long("--checkpoint-every", fallback);
  if (every < 1) {
    throw UsageError("--checkpoint-every must be >= 1, got " +
                     std::to_string(every));
  }
  return static_cast<int>(every);
}

int cmd_optimize(const Args& args, ObsSession& session) {
  api::OptimizeCommandConfig cfg;
  const std::string flow = args.get("--flow").value_or("stat");
  if (flow == "stat") {
    cfg.flow = api::OptimizeFlow::kStat;
  } else if (flow == "det") {
    cfg.flow = api::OptimizeFlow::kDet;
  } else {
    throw UsageError("--flow must be 'stat' or 'det'");
  }
  cfg.input = study_input(args);
  cfg.opt.t_max_ps = args.get_double("--tmax", 0.0);  // <= 0: factor * D_min
  cfg.t_max_factor = args.get_double("--tmax-factor", 1.15);
  cfg.opt.yield_target = args.get_double("--eta", 0.99);
  cfg.opt.corner_k_sigma = args.get_double("--corner", 3.0);
  cfg.opt.seed = static_cast<std::uint64_t>(args.get_long("--seed", 42));
  // 0 = all hardware threads; results are thread-count invariant.
  cfg.opt.num_threads = static_cast<int>(args.get_long("--threads", 0));
  cfg.opt.deadline_ms = args.get_long("--deadline", 0);
  cfg.opt.checkpoint_path = args.get("--checkpoint").value_or("");
  cfg.opt.checkpoint_every = parse_checkpoint_every(args, 256);
  parse_opt_engine(args, cfg.opt.flat_engine, cfg.opt.candidate_block);

  const api::OptimizeCommandResult r =
      api::run_optimize_command(cfg, session.reg());
  report_impl(args, r.impl_entries);

  std::cout << flow << " flow on " << r.circuit.name() << ": "
            << r.result.note << " (" << r.result.sizing_commits
            << " upsizes, " << r.result.hvt_commits << " HVT swaps, "
            << r.result.downsize_commits << " downsizes)\n";
  if (!r.result.completed && !cfg.opt.checkpoint_path.empty()) {
    std::cout << "progress saved to " << cfg.opt.checkpoint_path
              << "; rerun the same command to resume\n";
  }
  if (cfg.flow == api::OptimizeFlow::kStat) {
    std::cout << opt_engine_echo(cfg.opt.flat_engine, cfg.opt.candidate_block)
              << "\n";
  }
  std::cout << "\n";
  print_metrics(r.metrics, r.t_max_ps);

  const std::string out =
      args.get("--out").value_or(r.circuit.name() + ".impl");
  write_impl_file(out, r.circuit);
  std::cout << "\nwrote " << out << "\n";
  if (const auto bench_out = args.get("--write-bench")) {
    std::ofstream file(*bench_out);
    STATLEAK_CHECK(file.good(), "cannot write " + *bench_out);
    write_bench(file, r.circuit);
    std::cout << "wrote " << *bench_out << "\n";
  }
  // The partial implementation above is still valid and was written; the
  // exit code tells scripts the budget ran out before convergence.
  return r.exit_code();
}

/// The shared mc/serve flag decoding: flag validation precedes any file
/// I/O, so a bad spelling is a usage error (exit 2) even when the netlist
/// is also missing.
api::McCommandConfig parse_mc_config(const Args& args) {
  api::McCommandConfig cfg;
  McConfig& mc = cfg.mc;
  const std::string health = args.get("--health").value_or("fail");
  if (health == "fail") {
    mc.health_policy = HealthPolicy::kFail;
  } else if (health == "quarantine") {
    mc.health_policy = HealthPolicy::kQuarantine;
  } else {
    throw UsageError("--health must be 'fail' or 'quarantine'");
  }
  const std::string sampler = args.get("--sampler").value_or("pseudo");
  if (sampler == "pseudo") {
    mc.sampler = McSampler::kPseudo;
  } else if (sampler == "sobol") {
    mc.sampler = McSampler::kSobol;
  } else {
    throw UsageError("--sampler must be 'pseudo' or 'sobol'");
  }
  const std::string importance = args.get("--importance").value_or("off");
  if (importance != "auto" && importance != "off") {
    throw UsageError("--importance must be 'auto' or 'off'");
  }
  mc.control_variate = args.has("--cv");
  if (mc.control_variate && importance == "auto") {
    throw UsageError("--cv cannot be combined with --importance auto");
  }
  cfg.importance_auto = importance == "auto";
  mc.num_samples = static_cast<int>(args.get_long("--samples", 5000));
  // 0 = auto; any value yields bit-identical results (performance knob).
  mc.batch_size = static_cast<int>(args.get_long("--batch", 0));
  mc.seed = static_cast<std::uint64_t>(args.get_long("--seed", 42));
  // 0 = all hardware threads; the sample streams are counter-based, so the
  // report is bit-identical whatever the thread count.
  mc.num_threads = static_cast<int>(args.get_long("--threads", 0));
  mc.deadline_ms = args.get_long("--deadline", 0);
  mc.checkpoint_path = args.get("--checkpoint").value_or("");
  mc.checkpoint_every = parse_checkpoint_every(args, 4096);
  cfg.t_max_ps = args.get_double("--tmax", 0.0);  // <= 0: 1.1 * nominal
  cfg.input = study_input(args);
  return cfg;
}

/// --dump-samples: the surviving per-sample values in slot order, one
/// "delay leakage" pair per line, printed with std::to_chars shortest
/// round-trip form — the byte-comparison artifact of the distributed
/// acceptance tests (a serve campaign must reproduce `mc` exactly).
void write_sample_lines(const std::string& path, const McResult& result) {
  std::ofstream out(path, std::ios::binary);
  STATLEAK_CHECK(out.good(), "cannot write " + path);
  char buf[64];
  const auto write_num = [&](double v) {
    const auto res = std::to_chars(buf, buf + sizeof(buf), v);
    out.write(buf, res.ptr - buf);
  };
  for (std::size_t i = 0; i < result.delay_ps.size(); ++i) {
    write_num(result.delay_ps[i]);
    out.put(' ');
    write_num(result.leakage_na[i]);
    out.put('\n');
  }
  STATLEAK_CHECK(out.good(), "failed writing " + path);
  std::cout << "wrote " << result.delay_ps.size() << " samples to " << path
            << "\n";
}

void dump_samples(const Args& args, const api::McCommandResult& r) {
  const auto path = args.get("--dump-samples");
  if (!path) return;
  write_sample_lines(*path, r.result);
}

/// Sweep's --dump-samples is a prefix: cell i (grid order) lands in
/// <prefix>.cell<i>, each file byte-identical to a standalone `statleak
/// mc --dump-samples` run at that cell's corner.
void dump_sweep_samples(const Args& args, const api::SweepCommandResult& r) {
  const auto prefix = args.get("--dump-samples");
  if (!prefix) return;
  for (std::size_t i = 0; i < r.sweep.cells.size(); ++i) {
    write_sample_lines(*prefix + ".cell" + std::to_string(i),
                       r.sweep.cells[i].result);
  }
}

int cmd_mc(const Args& args, ObsSession& session) {
  const api::McCommandConfig cfg = parse_mc_config(args);
  const api::McCommandResult r = api::run_mc_command(cfg, session.reg());
  report_impl(args, r.impl_entries);
  std::cout << api::mc_summary_text(r);
  dump_samples(args, r);
  return r.exit_code();
}

int cmd_sweep(const Args& args, ObsSession& session) {
  // The shared mc-engine flag decoding supplies input + per-cell engine
  // config (absent single-corner flags fall back to defaults the grid
  // overrides anyway); the grid axes come from the list flags.
  const api::McCommandConfig base = parse_mc_config(args);
  api::SweepCommandConfig cfg;
  cfg.input = base.input;
  cfg.mc = base.mc;
  cfg.t_max_ps = base.t_max_ps;
  cfg.grid.nodes = parse_string_list(args, "--nodes", "generic-100nm");
  cfg.grid.temperatures_k = parse_double_list(args, "--temps", 0.0);
  cfg.grid.vdds_v = parse_double_list(args, "--vdds", 0.0);
  cfg.grid.sigma_scales = parse_double_list(args, "--sigmas", 1.0);

  const api::SweepCommandResult r = api::run_sweep_command(cfg, session.reg());
  report_impl(args, r.impl_entries);
  std::cout << api::sweep_summary_text(r);
  if (const auto surface = args.get("--surface-json")) {
    write_sweep_surface(*surface, r.circuit_name, r.grid, r.sweep);
    std::cout << "wrote surface " << *surface << "\n";
  }
  dump_sweep_samples(args, r);
  return r.exit_code();
}

int cmd_serve(const Args& args, ObsSession& session) {
  const api::McCommandConfig cfg = parse_mc_config(args);
  dist::DistConfig dc;
  dc.workers = static_cast<int>(args.get_long("--workers", 2));
  if (dc.workers < 1) throw UsageError("--workers must be >= 1");
  dc.worker_threads = static_cast<int>(
      args.get_long("--worker-threads", args.get_long("--threads", 1)));
  dc.listen = args.get("--listen").value_or("");
  dc.port_file = args.get("--port-file").value_or("");
  dc.heartbeat_ms = args.get_long("--heartbeat", 30000);
  dc.shards_per_worker =
      static_cast<int>(args.get_long("--shards-per-worker", 4));

  const dist::CampaignResult r = dist::run_campaign(cfg, dc, session.reg());
  report_impl(args, r.command.impl_entries);
  std::cout << "campaign: " << r.workers_spawned << " worker(s), "
            << r.shards_dispatched << " shard(s) dispatched";
  if (r.shards_redispatched > 0) {
    std::cout << ", " << r.shards_redispatched << " re-dispatched";
  }
  if (r.workers_lost > 0) {
    std::cout << ", " << r.workers_lost << " worker(s) lost";
  }
  std::cout << "\n";
  std::cout << api::mc_summary_text(r.command);
  dump_samples(args, r.command);
  return r.command.exit_code();
}

int cmd_worker(const Args& args, ObsSession& session) {
  dist::WorkerOptions wo;
  wo.stdio = args.has("--stdio");
  wo.connect = args.get("--connect").value_or("");
  wo.threads_override = static_cast<int>(args.get_long("--threads", 0));
  if (wo.stdio && !wo.connect.empty()) {
    throw UsageError("--stdio and --connect are mutually exclusive");
  }
  if (!wo.stdio && wo.connect.empty()) {
    throw UsageError("worker needs --stdio or --connect host:port");
  }
  return dist::run_worker(wo, session.reg());
}

int cmd_mlv(const Args& args, ObsSession& session) {
  Circuit c = load_circuit(args);
  const CellLibrary lib = make_library(args);
  MlvConfig cfg;
  cfg.random_trials = static_cast<int>(args.get_long("--trials", 128));
  cfg.seed = static_cast<std::uint64_t>(args.get_long("--seed", 1));
  obs::ScopedTimer timer(session.reg(), "mlv.search");
  const MlvResult res = find_min_leakage_vector(c, lib, cfg);
  timer.stop();
  std::cout << "standby leakage of " << c.name() << ": random mean "
            << format_si(res.mean_leakage_na * 1e-9, "A") << ", worst "
            << format_si(res.worst_leakage_na * 1e-9, "A")
            << ", min-leakage vector "
            << format_si(res.best_leakage_na * 1e-9, "A") << " ("
            << format_fixed(100.0 * res.saving_vs_mean(), 1)
            << " % below mean, " << res.evaluations << " evaluations)\n"
            << "vector: ";
  for (char bit : res.best_vector) std::cout << (bit ? '1' : '0');
  std::cout << "\n";
  if (obs::Registry* obs = session.reg()) {
    obs->add("mlv.evaluations", static_cast<double>(res.evaluations));
    obs->set_gauge("mlv.best_leakage_na", res.best_leakage_na);
    obs->set_gauge("mlv.mean_leakage_na", res.mean_leakage_na);
  }
  return 0;
}

int cmd_flow(const Args& args, ObsSession& session) {
  api::FlowCommandConfig cfg;
  cfg.input = study_input(args);
  cfg.flow.t_max_factor = args.get_double("--tmax-factor", 1.15);
  cfg.flow.yield_target = args.get_double("--eta", 0.99);
  cfg.flow.det_corner_k = args.get_double("--corner", 0.0);
  cfg.flow.det_auto_corner = args.has("--auto-corner");
  cfg.flow.mc_samples = static_cast<int>(args.get_long("--mc-samples", 0));
  cfg.flow.mc_batch_size = static_cast<int>(args.get_long("--batch", 0));
  cfg.flow.seed = static_cast<std::uint64_t>(args.get_long("--seed", 7));
  cfg.flow.num_threads = static_cast<int>(args.get_long("--threads", 0));
  cfg.flow.deadline_ms = args.get_long("--deadline", 0);
  cfg.flow.opt_checkpoint_path = args.get("--checkpoint").value_or("");
  cfg.flow.opt_checkpoint_every = parse_checkpoint_every(args, 256);
  parse_opt_engine(args, cfg.flow.opt_flat_engine,
                   cfg.flow.opt_candidate_block);

  const api::FlowCommandResult r = api::run_flow_command(cfg, session.reg());
  report_impl(args, r.impl_entries);
  const FlowOutcome& out = r.outcome;

  Table t({"", "deterministic", "statistical"});
  const auto row = [&](const std::string& k, const std::string& det,
                       const std::string& stat) {
    t.begin_row();
    t.add(k);
    t.add(det);
    t.add(stat);
  };
  const auto& dm = out.det_metrics;
  const auto& sm = out.stat_metrics;
  row("timing yield (SSTA)", format_fixed(dm.timing_yield, 4),
      format_fixed(sm.timing_yield, 4));
  row("leakage mean", format_si(dm.leakage_mean_na * 1e-9, "A"),
      format_si(sm.leakage_mean_na * 1e-9, "A"));
  row("leakage p99", format_si(dm.leakage_p99_na * 1e-9, "A"),
      format_si(sm.leakage_p99_na * 1e-9, "A"));
  row("HVT fraction", format_fixed(100.0 * dm.hvt_fraction, 1) + " %",
      format_fixed(100.0 * sm.hvt_fraction, 1) + " %");
  row("area", format_fixed(dm.area_um, 1) + " um",
      format_fixed(sm.area_um, 1) + " um");
  row("runtime", format_fixed(out.det_runtime_s, 2) + " s",
      format_fixed(out.stat_runtime_s, 2) + " s");
  if (out.has_mc) {
    row("MC timing yield", format_fixed(out.det_mc.timing_yield, 4),
        format_fixed(out.stat_mc.timing_yield, 4));
    row("MC leakage p99", format_si(out.det_mc.leakage_p99_na * 1e-9, "A"),
        format_si(out.stat_mc.leakage_p99_na * 1e-9, "A"));
  }
  std::cout << out.circuit_name << ": D_min "
            << format_fixed(out.d_min_ps, 1) << " ps, T "
            << format_fixed(out.t_max_ps, 1) << " ps, det corner "
            << format_fixed(out.det_corner_k, 1) << " sigma\n"
            << opt_engine_echo(cfg.flow.opt_flat_engine,
                               cfg.flow.opt_candidate_block)
            << "\n\n";
  t.print(std::cout);
  std::cout << "\np99 leakage saving "
            << format_fixed(100.0 * out.p99_saving(), 1)
            << " %, mean saving "
            << format_fixed(100.0 * out.mean_saving(), 1) << " %\n";
  if (!out.completed) {
    std::cout << "\ndeadline expired mid-flow: the numbers above are from "
                 "cleanly stopped partial phases\n";
  }
  return r.exit_code();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  if (cmd == "-h" || cmd == "--help") {
    usage();
    return 0;
  }
  static const std::vector<CommandSpec> kSpecs = command_specs();
  const CommandSpec* spec = nullptr;
  for (const CommandSpec& c : kSpecs) {
    if (cmd == c.name) {
      spec = &c;
      break;
    }
  }
  if (spec == nullptr) {
    std::cerr << "unknown command '" << cmd << "'\n";
    return usage();
  }
  try {
    const Args args(*spec, argc, argv);
    if (args.help_requested()) {
      print_command_help(*spec, std::cout);
      return 0;
    }
    ObsSession session(spec->name, args);
    int rc = 1;
    if (cmd == "gen") rc = cmd_gen(args, session);
    if (cmd == "stats") rc = cmd_stats(args, session);
    if (cmd == "analyze") rc = cmd_analyze(args, session);
    if (cmd == "optimize") rc = cmd_optimize(args, session);
    if (cmd == "mc") rc = cmd_mc(args, session);
    if (cmd == "sweep") rc = cmd_sweep(args, session);
    if (cmd == "mlv") rc = cmd_mlv(args, session);
    if (cmd == "flow") rc = cmd_flow(args, session);
    if (cmd == "serve") rc = cmd_serve(args, session);
    if (cmd == "worker") rc = cmd_worker(args, session);
    // A deadline-expired run (rc 4) still writes its report — flagged
    // "completed": false — so partial progress is observable. The worker's
    // stdout is its protocol channel, so its session output goes to stderr.
    if (rc == 0 || rc == 4) {
      session.finish(cmd == "worker" ? std::cerr : std::cout);
    }
    return rc;
  } catch (const UsageError& e) {
    std::cerr << "error: " << e.what() << "\n\n";
    print_command_help(*spec, std::cerr);
    return 2;
  } catch (const CheckpointError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 5;
  } catch (const dist::DistError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 6;
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 3;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
