/// \file netlist_flow.cpp
/// \brief End-to-end flow on an external .bench netlist: parse, optimize,
///        verify logical equivalence, report, and write the result back.
///
/// Reads an ISCAS85-format netlist (a file path argument, or the embedded
/// c17 when none is given), runs the statistical flow, checks that the
/// optimization left the logic function untouched, prints a signoff-style
/// report, and emits the optimized netlist with a per-gate implementation
/// annotation sidecar.
///
///   $ ./netlist_flow [netlist.bench] [t_max_factor]

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "statleak.hpp"

namespace {

const char* kEmbeddedC17 = R"(# ISCAS85 c17
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace statleak;

  Circuit circuit = argc > 1 ? read_bench_file(argv[1])
                             : read_bench_string(kEmbeddedC17, "c17");
  const double t_factor = argc > 2 ? std::atof(argv[2]) : 1.2;

  const ProcessNode node = generic_100nm();
  const CellLibrary lib(node);
  const VariationModel var = VariationModel::typical_100nm();

  const CircuitStats stats = circuit_stats(circuit);
  std::cout << "parsed " << circuit.name() << ": " << stats.num_cells
            << " cells, " << stats.num_inputs << " PIs, " << stats.num_outputs
            << " POs, depth " << stats.depth << "\n";

  // Golden simulation vectors before optimization.
  Rng rng(2024);
  std::vector<std::vector<char>> vectors(64);
  std::vector<std::vector<char>> golden;
  for (auto& v : vectors) {
    v.resize(circuit.inputs().size());
    for (auto& bit : v) bit = rng.uniform_index(2) ? 1 : 0;
    golden.push_back(simulate(circuit, v));
  }

  // Optimize.
  const double d_min = min_achievable_delay_ps(circuit, lib);
  OptConfig cfg;
  cfg.t_max_ps = t_factor * d_min;
  cfg.yield_target = 0.99;
  cfg.num_threads = 0;  // scoring on all cores; result is thread-invariant
  const OptResult r = StatisticalOptimizer(lib, var, cfg).run(circuit);

  // Equivalence check: implementation choices must not change the function.
  for (std::size_t v = 0; v < vectors.size(); ++v) {
    if (simulate(circuit, vectors[v]) != golden[v]) {
      std::cerr << "FATAL: optimization changed the logic function!\n";
      return 1;
    }
  }

  const CircuitMetrics m = measure_metrics(circuit, lib, var, cfg.t_max_ps);
  McConfig mc;
  mc.num_samples = 5000;
  mc.num_threads = 0;  // parallel sampling; identical samples on any machine
  const McResult mcr = run_monte_carlo(circuit, lib, var, mc);

  std::cout << "\nsignoff report (" << (r.feasible ? "CLEAN" : "VIOLATED")
            << ")\n";
  Table report({"metric", "value"});
  const auto row = [&](const std::string& k, const std::string& v) {
    report.begin_row();
    report.add(k);
    report.add(v);
  };
  row("delay target", format_fixed(cfg.t_max_ps, 1) + " ps (" +
                          format_fixed(t_factor, 2) + " x Dmin)");
  row("timing yield (SSTA)", format_fixed(m.timing_yield, 4));
  row("timing yield (MC, 5k)", format_fixed(mcr.timing_yield(cfg.t_max_ps), 4));
  row("leakage nominal", format_si(m.leakage_nominal_na * 1e-9, "A"));
  row("leakage mean", format_si(m.leakage_mean_na * 1e-9, "A"));
  row("leakage p99", format_si(m.leakage_p99_na * 1e-9, "A"));
  row("HVT cells", std::to_string(m.hvt_count) + " / " +
                       std::to_string(m.cell_count));
  row("logic equivalence", "PASS (64 random vectors)");
  report.print(std::cout);

  // Write the optimized netlist + implementation sidecar.
  const std::string out_base = circuit.name() + "_opt";
  {
    std::ofstream net(out_base + ".bench");
    write_bench(net, circuit);
  }
  {
    std::ofstream impl(out_base + ".impl");
    impl << "# gate  vth  size\n";
    for (GateId id = 0; id < circuit.num_gates(); ++id) {
      const Gate& g = circuit.gate(id);
      if (g.kind == CellKind::kInput) continue;
      impl << g.name << "  " << to_string(g.vth) << "  "
           << format_fixed(g.size, 2) << "\n";
    }
  }
  std::cout << "\nwrote " << out_base << ".bench and " << out_base
            << ".impl\n";
  return 0;
}
