/// \file custom_technology.cpp
/// \brief Define your own process node and variation model, then compare
///        optimization results across technologies.
///
/// Shows the full technology-definition surface of the API: every parameter
/// of ProcessNode and VariationModel, a custom discrete size grid, and a
/// cross-node comparison (100 nm vs 70 nm vs a pessimistic-variation 70 nm)
/// on the same multiplier circuit — the "leakage gets worse faster than
/// delay gets better" scaling story.
///
///   $ ./custom_technology [mult_bits]

#include <cstdlib>
#include <iostream>

#include "statleak.hpp"

int main(int argc, char** argv) {
  using namespace statleak;
  const int bits = argc > 1 ? std::atoi(argv[1]) : 8;

  // A hypothetical half-node between the two built-ins, with every knob
  // spelled out. See tech/process.hpp for units and meanings.
  ProcessNode custom;
  custom.name = "custom-85nm";
  custom.vdd = 1.1;
  custom.leff_nm = 50.0;
  custom.temperature_k = 373.0;
  custom.vth_low = 0.19;
  custom.vth_high = 0.30;
  custom.subthreshold_slope = 0.102;
  custom.i0_na_per_um = 4500.0;
  custom.vth_rolloff_v_per_nm = 0.0013;
  custom.alpha = 1.28;
  custom.k_drive_ua_per_um = 680.0;
  custom.cg_ff_per_um = 1.35;
  custom.cj_ff_per_um = 0.90;
  custom.cw_fixed_ff = 0.50;
  custom.cw_per_fanout_ff = 0.22;
  custom.wn_unit_um = 0.42;
  custom.pn_ratio = 1.9;
  custom.validate();

  // A coarser drive ladder than the default X1..X16 grid.
  const std::vector<double> coarse_grid = {1.0, 2.0, 4.0, 8.0};

  struct Tech {
    std::string label;
    CellLibrary lib;
    VariationModel var;
  };
  std::vector<Tech> techs;
  techs.push_back({"generic-100nm", CellLibrary(generic_100nm()),
                   VariationModel::typical_100nm()});
  techs.push_back({"custom-85nm (coarse grid)",
                   CellLibrary(custom, coarse_grid),
                   VariationModel::typical_100nm()});
  techs.push_back({"generic-70nm", CellLibrary(generic_70nm()),
                   VariationModel::typical_100nm()});
  techs.push_back({"generic-70nm, 1.5x variation",
                   CellLibrary(generic_70nm()),
                   VariationModel::typical_100nm().scaled(1.5)});

  std::cout << "circuit: " << bits << "x" << bits << " array multiplier\n\n";
  Table table({"technology", "D_min [ps]", "T [ps]", "stat p99 [uA]",
               "p99/nominal", "HVT %", "yield"});
  for (const Tech& tech : techs) {
    Circuit c = make_array_multiplier(bits);
    const double d_min = min_achievable_delay_ps(c, tech.lib);
    OptConfig cfg;
    cfg.t_max_ps = 1.15 * d_min;
    cfg.yield_target = 0.99;
    (void)StatisticalOptimizer(tech.lib, tech.var, cfg).run(c);
    const CircuitMetrics m = measure_metrics(c, tech.lib, tech.var,
                                             cfg.t_max_ps);
    table.begin_row();
    table.add(tech.label);
    table.add(d_min, 0);
    table.add(cfg.t_max_ps, 0);
    table.add(m.leakage_p99_na / 1000.0, 2);
    table.add(m.leakage_p99_na / std::max(m.leakage_nominal_na, 1e-9), 2);
    table.add(100.0 * m.hvt_fraction, 1);
    table.add(m.timing_yield, 4);
  }
  table.print(std::cout);

  std::cout << "\nreading guide: newer nodes are faster but leak more, and "
               "scaling the variation model inflates the p99/nominal ratio — "
               "the tail grows faster than the mean.\n";
  return 0;
}
