/// \file quickstart.cpp
/// \brief Minimal end-to-end tour of the statleak API.
///
/// Builds a 16-bit carry-lookahead adder, optimizes it with the
/// deterministic (corner-based) and statistical (yield-constrained) flows at
/// the same delay target, and prints the leakage distributions of both
/// solutions side by side — the paper's headline comparison on one circuit.
///
///   $ ./quickstart [t_max_factor] [yield_target]

#include <cstdlib>
#include <iostream>

#include "statleak.hpp"

int main(int argc, char** argv) {
  using namespace statleak;

  const double t_factor = argc > 1 ? std::atof(argv[1]) : 1.15;
  const double eta = argc > 2 ? std::atof(argv[2]) : 0.99;

  // 1. Technology: a generic 100 nm dual-Vth node and its variation model.
  const ProcessNode node = generic_100nm();
  const CellLibrary lib(node);
  const VariationModel var = VariationModel::typical_100nm();

  std::cout << "node " << node.name << ": Vdd " << node.vdd << " V, LVT "
            << node.vth_low << " V / HVT " << node.vth_high << " V\n"
            << "variation: sigma_L " << var.sigma_l_total_nm()
            << " nm (inter " << var.sigma_l_inter_nm << "), sigma_Vth "
            << 1000.0 * var.sigma_vth_total_v() << " mV\n\n";

  // 2. A circuit: 16-bit carry-lookahead adder.
  Circuit circuit = make_carry_lookahead_adder(16);
  std::cout << "circuit " << circuit.name() << ": " << circuit.num_cells()
            << " cells, depth " << circuit.depth() << "\n\n";

  // 3. Both flows at T = t_factor * D_min, yield target eta.
  FlowConfig flow;
  flow.t_max_factor = t_factor;
  flow.yield_target = eta;
  flow.det_auto_corner = true;  // honest baseline: guard-band until eta holds
  flow.mc_samples = 4000;       // cross-check with Monte Carlo
  const FlowOutcome out = run_flow(circuit, lib, var, flow);

  std::cout << "D_min " << format_fixed(out.d_min_ps, 1) << " ps, target T "
            << format_fixed(out.t_max_ps, 1) << " ps, eta " << eta << "\n"
            << "deterministic baseline used a " << out.det_corner_k
            << "-sigma guard-band corner\n\n";

  Table table({"flow", "yield(SSTA)", "yield(MC)", "leak mean [uA]",
               "leak p99 [uA]", "HVT %", "runtime [s]"});
  const auto row = [&](const char* name, const CircuitMetrics& m,
                       const McCheck& mc, double rt) {
    table.begin_row();
    table.add(name);
    table.add(m.timing_yield, 4);
    table.add(mc.timing_yield, 4);
    table.add(m.leakage_mean_na / 1000.0, 2);
    table.add(m.leakage_p99_na / 1000.0, 2);
    table.add(100.0 * m.hvt_fraction, 1);
    table.add(rt, 2);
  };
  row("deterministic", out.det_metrics, out.det_mc, out.det_runtime_s);
  row("statistical", out.stat_metrics, out.stat_mc, out.stat_runtime_s);
  table.print(std::cout);

  std::cout << "\nstatistical saves "
            << format_fixed(100.0 * out.p99_saving(), 1)
            << " % of 99th-percentile leakage ("
            << format_fixed(100.0 * out.mean_saving(), 1)
            << " % of mean) at equal timing yield.\n";
  return 0;
}
