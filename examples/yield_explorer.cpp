/// \file yield_explorer.cpp
/// \brief Explore the leakage cost of timing yield on a circuit of your
///        choice — the trade-off a signoff team actually negotiates.
///
/// For each yield target eta, runs the statistical optimizer and reports the
/// resulting leakage distribution, HVT fraction and area; then shows where
/// the deterministic corner flow would land for comparison.
///
///   $ ./yield_explorer [proxy-name] [t_max_factor]
///   $ ./yield_explorer c880p 1.2

#include <cstdlib>
#include <iostream>
#include <string>

#include "statleak.hpp"

int main(int argc, char** argv) {
  using namespace statleak;

  const std::string name = argc > 1 ? argv[1] : "c880p";
  const double t_factor = argc > 2 ? std::atof(argv[2]) : 1.15;

  const ProcessNode node = generic_100nm();
  const CellLibrary lib(node);
  const VariationModel var = VariationModel::typical_100nm();

  Circuit base = iscas85_proxy(name);
  const double d_min = min_achievable_delay_ps(base, lib);
  const double t_max = t_factor * d_min;
  std::cout << "circuit " << name << ": " << base.num_cells()
            << " cells, D_min " << format_fixed(d_min, 1) << " ps, T "
            << format_fixed(t_max, 1) << " ps\n\n";

  Table table({"flow / eta", "yield", "leak mean [uA]", "leak p99 [uA]",
               "HVT %", "area [um]"});
  const auto add_row = [&](const std::string& label, const Circuit& c) {
    const CircuitMetrics m = measure_metrics(c, lib, var, t_max);
    table.begin_row();
    table.add(label);
    table.add(m.timing_yield, 4);
    table.add(m.leakage_mean_na / 1000.0, 2);
    table.add(m.leakage_p99_na / 1000.0, 2);
    table.add(100.0 * m.hvt_fraction, 1);
    table.add(m.area_um, 0);
  };

  for (double eta : {0.84, 0.90, 0.95, 0.99, 0.999}) {
    Circuit c = base;
    OptConfig cfg;
    cfg.t_max_ps = t_max;
    cfg.yield_target = eta;
    const OptResult r = StatisticalOptimizer(lib, var, cfg).run(c);
    add_row("stat eta=" + format_fixed(eta, 3) +
                (r.feasible ? "" : " (infeasible)"),
            c);
  }
  for (double k : {0.0, 1.5, 3.0}) {
    Circuit c = base;
    OptConfig cfg;
    cfg.t_max_ps = t_max;
    cfg.corner_k_sigma = k;
    (void)DeterministicOptimizer(lib, var, cfg).run(c);
    add_row("det corner k=" + format_fixed(k, 1), c);
  }
  table.print(std::cout);

  std::cout << "\nreading guide: each extra nine of yield costs leakage; the "
               "nominal-corner row shows why deterministic signoff at k=0 "
               "is not shippable, and k=3 shows the guard-band tax.\n";
  return 0;
}
